//! Fixture tests: each rule must fire exactly where a seeded violation
//! sits, and stay quiet on a conforming workspace.
//!
//! Every test materializes a miniature workspace under a temp directory —
//! a hot-path file, a `protocol.rs`, a `snapshot.rs`, and a README — then
//! mutates one facet and asserts the resulting findings.

use mithra_lint::{check_workspace, Report};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A miniature workspace on disk, deleted on drop.
struct Fixture {
    root: PathBuf,
}

static COUNTER: AtomicUsize = AtomicUsize::new(0);

impl Fixture {
    fn new() -> Fixture {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let root =
            std::env::temp_dir().join(format!("mithra-lint-fixture-{}-{n}", std::process::id()));
        fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    /// Writes `content` at `rel` (creating parent dirs) and returns self
    /// for chaining.
    fn file(self, rel: &str, content: &str) -> Self {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("rel has a parent")).expect("create parent");
        fs::write(path, content).expect("write fixture file");
        self
    }

    fn check(&self) -> Report {
        check_workspace(&self.root).expect("check fixture workspace")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// A conforming `protocol.rs`: two error codes, two ops, all constructed
/// and test-asserted.
const PROTOCOL_OK: &str = r#"
pub enum ErrorCode { Parse, Internal }
impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Internal => "internal",
        }
    }
}
pub fn classify(bad: bool) -> ErrorCode {
    if bad { ErrorCode::Parse } else { ErrorCode::Internal }
}
pub fn parse_request(op: &str) -> u8 {
    match op {
        "insert" => 1,
        "stats" => 2,
        _ => 0,
    }
}
#[cfg(test)]
mod tests {
    #[test]
    fn wire_strings() {
        assert_eq!(super::classify(true).as_str(), "parse");
        let resp = "{\"ok\":false,\"code\":\"internal\"}";
        assert!(resp.contains("\"code\":\"internal\""));
        assert_eq!(super::parse_request("insert"), 1);
        let _ = "{\"op\":\"insert\"}";
        let _ = "{\"op\":\"stats\"}";
    }
}
"#;

/// A conforming `snapshot.rs`: version 3, restorable from 1, gates for
/// the two upgrades, writer interpolates the constant.
const SNAPSHOT_OK: &str = r#"
pub const SNAPSHOT_VERSION: u64 = 3;
pub const SNAPSHOT_MIN_VERSION: u64 = 1;
pub fn restore(version: u64) -> u8 {
    let mut format = 0;
    if version >= 2 { format += 1; }
    if version >= 3 { format += 1; }
    format
}
pub fn header() -> String {
    format!("{{\"version\":{SNAPSHOT_VERSION}}}")
}
"#;

/// A conforming README with both drift-checked tables.
const README_OK: &str = "\
# fixture

| Op | Request fields | Success response fields |
| --- | --- | --- |
| `insert` | rows | ok |
| `stats` | — | ok |

| Code | Meaning |
| --- | --- |
| `parse` | malformed request |
| `internal` | handler bug |

Snapshots carry an integer `\"version\"` (currently 3).
";

/// A hot-path file with no violations.
const EVENT_OK: &str = r#"
pub fn tick(input: Option<u8>) -> u8 {
    input.unwrap_or(0)
}
"#;

fn conforming() -> Fixture {
    Fixture::new()
        .file("crates/service/src/protocol.rs", PROTOCOL_OK)
        .file("crates/service/src/snapshot.rs", SNAPSHOT_OK)
        .file("crates/service/src/event.rs", EVENT_OK)
        .file("README.md", README_OK)
}

fn rule_findings<'r>(report: &'r Report, rule: &str) -> Vec<&'r mithra_lint::rules::Finding> {
    report.findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn conforming_fixture_is_clean() {
    let report = conforming().check();
    assert!(report.clean(), "expected clean, got: {:?}", report.findings);
    assert_eq!(report.files_scanned, 3);
}

#[test]
fn panic_freedom_fires_on_each_banned_form() {
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
pub fn tick(input: Option<u8>) -> u8 {
    let a = input.unwrap();
    let b = input.expect("present");
    if a + b > 9 { panic!("overflow"); }
    if a == 1 { todo!() }
    if b == 2 { unimplemented!() }
    a
}
"#,
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "panic-freedom");
    assert_eq!(findings.len(), 5, "{:?}", report.findings);
    assert_eq!(
        findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![3, 4, 5, 6, 7]
    );
    assert!(findings
        .iter()
        .all(|f| f.file == "crates/service/src/event.rs"));
}

#[test]
fn panic_freedom_skips_strings_comments_and_tests() {
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
pub fn tick() -> &'static str {
    // a comment may say unwrap() freely
    /* so may a block comment: expect("x") */
    let s = r"raw string with unwrap() inside";
    let t = "escaped \" unwrap() too";
    let _ = (s, t);
    "panic!(no)"
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Option<u8> = Some(1);
        v.unwrap();
    }
}
"#,
    );
    let report = fixture.check();
    assert!(report.clean(), "{:?}", report.findings);
}

#[test]
fn panic_freedom_ignores_cold_paths() {
    // The same unwrap in a non-hot-path file is not a finding.
    let fixture = conforming().file(
        "crates/core/src/solver.rs",
        "pub fn go(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let report = fixture.check();
    assert!(report.clean(), "{:?}", report.findings);
}

#[test]
fn lint_allow_suppresses_and_is_counted() {
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
pub fn tick(input: Option<u8>) -> u8 {
    // LINT-ALLOW(panic-freedom): fixture-justified
    input.unwrap()
}
pub fn tock(input: Option<u8>) -> u8 {
    input.expect("same line") // LINT-ALLOW(panic-freedom): trailing form
}
"#,
    );
    let report = fixture.check();
    assert!(report.clean(), "{:?}", report.findings);
    let summary = report
        .rules
        .iter()
        .find(|r| r.rule == "panic-freedom")
        .expect("summary row");
    assert_eq!(summary.allows, 2);
    assert_eq!(summary.findings, 0);
}

#[test]
fn unused_and_malformed_allows_are_findings() {
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
// LINT-ALLOW(panic-freedom): nothing here needs it
pub fn tick() -> u8 { 0 }
// LINT-ALLOW(panic-freedom) missing the colon
pub fn tock() -> u8 { 1 }
// LINT-ALLOW(no-such-rule): unknown rule name
pub fn tuck() -> u8 { 2 }
"#,
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "lint-allow");
    assert_eq!(findings.len(), 3, "{:?}", report.findings);
    assert!(findings.iter().any(|f| f.message.contains("unused")));
    assert!(findings.iter().any(|f| f.message.contains("malformed")));
    assert!(findings.iter().any(|f| f.message.contains("unknown rule")));
}

#[test]
fn unsafe_audit_requires_adjacent_safety() {
    let fixture = conforming().file(
        "crates/service/src/net/mod.rs",
        r#"
pub fn good(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid (fixture).
    unsafe { *p }
}
pub fn bad(p: *const u8) -> u8 {
    unsafe { *p }
}
pub fn stale(p: *const u8) -> u8 {
    // SAFETY: too far away — a statement intervenes.
    let _x = 1;
    unsafe { *p }
}
"#,
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "unsafe-audit");
    assert_eq!(
        findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![7, 12],
        "{:?}",
        report.findings
    );
}

#[test]
fn unsafe_audit_accepts_multiline_safety_runs() {
    let fixture = conforming().file(
        "crates/service/src/net/mod.rs",
        r#"
pub fn good(p: *const u8) -> u8 {
    // SAFETY: the marker sits on the first line of a run
    // whose later lines elaborate on the invariant.
    unsafe { *p }
}
"#,
    );
    let report = fixture.check();
    assert!(report.clean(), "{:?}", report.findings);
}

#[test]
fn error_codes_catch_dropped_readme_row() {
    let fixture = conforming().file(
        "README.md",
        &README_OK.replace("| `internal` | handler bug |\n", ""),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "error-codes");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert!(findings[0].message.contains("`internal`"));
    assert!(findings[0].message.contains("README"));
}

#[test]
fn error_codes_catch_stale_readme_row() {
    let fixture = conforming().file(
        "README.md",
        &README_OK.replace(
            "| `internal` | handler bug |",
            "| `internal` | handler bug |\n| `retired` | no longer exists |",
        ),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "error-codes");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert!(findings[0].message.contains("`retired`"));
    assert!(findings[0].line > 0, "stale rows carry the README line");
}

#[test]
fn error_codes_catch_unconstructed_and_untested() {
    // Remove the production constructor and the test assertions for
    // `internal`: two findings.
    let fixture = conforming().file(
        "crates/service/src/protocol.rs",
        &PROTOCOL_OK
            .replace(
                "if bad { ErrorCode::Parse } else { ErrorCode::Internal }",
                "let _ = bad; ErrorCode::Parse",
            )
            .replace(
                "let resp = \"{\\\"ok\\\":false,\\\"code\\\":\\\"internal\\\"}\";",
                "let resp = \"\";",
            )
            .replace(
                "assert!(resp.contains(\"\\\"code\\\":\\\"internal\\\"\"));",
                "let _ = resp;",
            ),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "error-codes");
    assert_eq!(findings.len(), 2, "{:?}", report.findings);
    assert!(findings
        .iter()
        .any(|f| f.message.contains("never constructed") && f.message.contains("Internal")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("not asserted") && f.message.contains("`internal`")));
}

#[test]
fn protocol_ops_catch_dropped_readme_row_and_missing_test() {
    let fixture = conforming()
        .file(
            "README.md",
            &README_OK.replace("| `stats` | — | ok |\n", ""),
        )
        .file(
            "crates/service/src/protocol.rs",
            &PROTOCOL_OK.replace("let _ = \"{\\\"op\\\":\\\"stats\\\"}\";", ""),
        );
    let report = fixture.check();
    let findings = rule_findings(&report, "protocol-ops");
    assert_eq!(findings.len(), 2, "{:?}", report.findings);
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`stats`") && f.message.contains("README")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`stats`") && f.message.contains("not exercised")));
}

#[test]
fn protocol_ops_catch_stale_readme_row() {
    let fixture = conforming().file(
        "README.md",
        &README_OK.replace(
            "| `stats` | — | ok |",
            "| `stats` | — | ok |\n| `vacuum` | — | ok |",
        ),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "protocol-ops");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert!(findings[0].message.contains("`vacuum`"));
}

#[test]
fn snapshot_version_catches_bump_without_gate_and_stale_readme() {
    // Bump the constant without teaching restore about version 4 and
    // without refreshing the README sentence: two findings.
    let fixture = conforming().file(
        "crates/service/src/snapshot.rs",
        &SNAPSHOT_OK.replace("SNAPSHOT_VERSION: u64 = 3", "SNAPSHOT_VERSION: u64 = 4"),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "snapshot-version");
    assert_eq!(findings.len(), 2, "{:?}", report.findings);
    assert!(findings.iter().any(|f| f.message.contains("restore gates")));
    assert!(findings.iter().any(|f| f.message.contains("(currently 4)")));
}

#[test]
fn snapshot_version_catches_hardcoded_writer_digit() {
    let fixture = conforming().file(
        "crates/service/src/snapshot.rs",
        &SNAPSHOT_OK.replace(
            "format!(\"{{\\\"version\\\":{SNAPSHOT_VERSION}}}\")",
            "String::from(\"{\\\"version\\\":3}\")",
        ),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "snapshot-version");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert!(findings[0].message.contains("hardcodes"));
    assert!(findings[0].line > 0);
}

#[test]
fn cli_exits_zero_on_clean_and_one_on_violations() {
    use std::process::Command;
    let clean = conforming();
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["check", "--root"])
        .arg(&clean.root)
        .output()
        .expect("run mithra-lint");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"summary\""), "{stdout}");
    assert!(stdout.contains("\"files_scanned\":3"), "{stdout}");

    let dirty = conforming().file(
        "crates/service/src/event.rs",
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["check", "--root"])
        .arg(&dirty.root)
        .output()
        .expect("run mithra-lint");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let first = stdout.lines().next().expect("a finding line");
    assert!(first.starts_with("{\"rule\":\"panic-freedom\""), "{first}");
    assert!(first.contains("\"line\":1"), "{first}");

    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .arg("frobnicate")
        .output()
        .expect("run mithra-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
