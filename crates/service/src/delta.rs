//! Delta maintenance: how a batch of inserted or deleted tuples moves the
//! MUP frontier.
//!
//! Under a fixed threshold, inserts only *increase* coverage, so the MUP set
//! moves strictly downward: a MUP matching an inserted tuple may become
//! covered (it retires), and its replacements are exactly the maximal
//! uncovered patterns in the pattern-graph region below it
//! ([`coverage_core::graph::maximal_uncovered_below`]). MUPs matching no
//! inserted tuple keep their coverage — and their status — untouched, so a
//! single insert re-probes only the `≲ 2^level` patterns around the frontier
//! it actually touches instead of re-running discovery over the whole graph.
//!
//! Deletes are the mirror image: coverage only *decreases*, and only for
//! patterns matching a deleted tuple, so the frontier moves strictly upward.
//! Every brand-new MUP lies in a deleted tuple's match sublattice
//! ([`coverage_core::graph::maximal_uncovered_within`]), and existing MUPs
//! never become covered — they can only stop being *maximal* when a newly
//! uncovered ancestor now dominates them.

use std::collections::HashSet;

use coverage_core::graph::{maximal_uncovered_below, maximal_uncovered_within};
use coverage_core::pattern::Pattern;
use coverage_index::CoverageProvider;

use crate::cache::CoverageCache;

/// What an insert or delete delta did to the MUP set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// MUPs that left the frontier (covered by inserts, or dominated by
    /// newly uncovered ancestors after deletes).
    pub retired: usize,
    /// New MUPs discovered (below retired ones for inserts, above the old
    /// frontier for deletes).
    pub discovered: usize,
}

/// Coverage of `codes` through the memo cache.
pub(crate) fn coverage_cached(
    oracle: &dyn CoverageProvider,
    cache: &mut CoverageCache,
    codes: &[u8],
) -> u64 {
    if let Some(v) = cache.get(codes) {
        return v;
    }
    let v = oracle.coverage(codes);
    cache.insert(codes, v);
    v
}

/// Coverage of a batch of patterns through the memo cache: misses are
/// gathered and answered with **one** [`CoverageProvider::coverage_batch`]
/// call — the wide probe a sharded backend fans out across its shards in
/// parallel — then fed back into the cache.
pub(crate) fn coverage_cached_batch(
    oracle: &dyn CoverageProvider,
    cache: &mut CoverageCache,
    patterns: &[Pattern],
) -> Vec<u64> {
    let mut out = vec![0u64; patterns.len()];
    let mut miss_at: Vec<usize> = Vec::new();
    let mut miss_codes: Vec<&[u8]> = Vec::new();
    for (i, p) in patterns.iter().enumerate() {
        match cache.get(p.codes()) {
            Some(v) => out[i] = v,
            None => {
                miss_at.push(i);
                miss_codes.push(p.codes());
            }
        }
    }
    if !miss_codes.is_empty() {
        let counts = oracle.coverage_batch(&miss_codes);
        for (&i, &count) in miss_at.iter().zip(&counts) {
            out[i] = count;
            cache.insert(patterns[i].codes(), count);
        }
    }
    out
}

/// Covered test for walk decisions: a cache hit answers from the memo,
/// otherwise the oracle's early-exit `cov ≥ τ` probe runs — in covered
/// regions (where most traversal decisions are made) it terminates after a
/// handful of words instead of computing the exact count, which is what
/// keeps the per-delete walk an order of magnitude under a full recompute.
/// Nothing is cached on the fast path (there is no exact count to store).
fn covered_fast(
    oracle: &dyn CoverageProvider,
    cache: &mut CoverageCache,
    tau: u64,
    codes: &[u8],
) -> bool {
    if let Some(v) = cache.get(codes) {
        return v >= tau;
    }
    oracle.covered(codes, tau)
}

/// Updates `mups` in place for a batch of freshly ingested rows (the oracle
/// must already include them). Only valid when the resolved threshold is
/// unchanged; a shifted rate threshold requires a full recompute because
/// previously covered patterns anywhere may have dropped below the new τ.
pub(crate) fn apply_insert_delta<R: AsRef<[u8]>>(
    oracle: &dyn CoverageProvider,
    cache: &mut CoverageCache,
    tau: u64,
    mups: &mut Vec<Pattern>,
    rows: &[R],
) -> DeltaOutcome {
    let cards = oracle.cardinalities().to_vec();
    let affected: Vec<Pattern> = mups
        .iter()
        .filter(|m| rows.iter().any(|r| m.matches(r.as_ref())))
        .cloned()
        .collect();
    if affected.is_empty() {
        return DeltaOutcome::default();
    }
    // One wide probe for every touched MUP — a sharded backend answers the
    // whole batch with parallel shard-local scans.
    let counts = coverage_cached_batch(oracle, cache, &affected);
    let retired: HashSet<Pattern> = affected
        .into_iter()
        .zip(counts)
        .filter(|&(_, count)| count >= tau)
        .map(|(m, _)| m)
        .collect();
    if retired.is_empty() {
        return DeltaOutcome::default();
    }
    mups.retain(|m| !retired.contains(m));
    // Walks from different retired MUPs can meet at a shared descendant;
    // the set keeps each new MUP once.
    let mut discovered: HashSet<Pattern> = HashSet::new();
    for root in &retired {
        discovered.extend(maximal_uncovered_below(root, &cards, |p| {
            coverage_cached(oracle, cache, p.codes()) >= tau
        }));
    }
    let outcome = DeltaOutcome {
        retired: retired.len(),
        discovered: discovered.len(),
    };
    mups.extend(discovered);
    outcome
}

/// Updates `mups` in place for a batch of freshly *deleted* rows (the oracle
/// must already have forgotten them). Only valid when the resolved threshold
/// is unchanged; a shrinking dataset can step a rate threshold *down*, which
/// may newly cover patterns anywhere and requires a full recompute.
pub(crate) fn apply_delete_delta<R: AsRef<[u8]>>(
    oracle: &dyn CoverageProvider,
    cache: &mut CoverageCache,
    tau: u64,
    mups: &mut Vec<Pattern>,
    rows: &[R],
) -> DeltaOutcome {
    // One sublattice walk per *distinct* deleted tuple: the walk probes
    // post-delete coverage, so extra copies of a tuple change nothing.
    let mut distinct: HashSet<&[u8]> = HashSet::new();
    let mut frontier: HashSet<Pattern> = HashSet::new();
    for row in rows {
        let row = row.as_ref();
        if distinct.insert(row) {
            // The fully determined pattern t̂ is the *minimum-coverage* node
            // of the tuple's match sublattice (every other node dominates it
            // and matches a superset of rows). While it stays covered the
            // whole sublattice does — one early-exit probe retires the
            // common nothing-uncovered delete without walking 2^d nodes.
            if covered_fast(oracle, cache, tau, row) {
                continue;
            }
            frontier.extend(maximal_uncovered_within(row, |p| {
                covered_fast(oracle, cache, tau, p.codes())
            }));
        }
    }
    // The walks return every maximal uncovered pattern matching a deleted
    // tuple — including MUPs that were already on the frontier.
    let newcomers: Vec<Pattern> = frontier.into_iter().filter(|p| !mups.contains(p)).collect();
    if newcomers.is_empty() {
        return DeltaOutcome::default();
    }
    // A newly uncovered ancestor dominates (strictly) any old MUP below it,
    // which therefore stops being maximal.
    let before = mups.len();
    mups.retain(|m| !newcomers.iter().any(|p| p.dominates(m)));
    let outcome = DeltaOutcome {
        retired: before - mups.len(),
        discovered: newcomers.len(),
    };
    mups.extend(newcomers);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::mup::{DeepDiver, MupAlgorithm};
    use coverage_data::{Dataset, Schema};
    use coverage_index::CoverageOracle;

    /// Example 1 of the paper plus a streamed insert: the delta must agree
    /// with re-running DEEPDIVER on the extended dataset.
    #[test]
    fn insert_retires_mup_and_discovers_frontier() {
        let rows = [
            vec![0u8, 1, 0],
            vec![0, 0, 1],
            vec![0, 0, 0],
            vec![0, 1, 1],
            vec![0, 0, 1],
        ];
        let ds = Dataset::from_rows(Schema::binary(3).unwrap(), &rows).unwrap();
        let mut oracle = CoverageOracle::from_dataset(&ds);
        let mut mups = DeepDiver::default()
            .find_mups_with_oracle(&oracle, 1)
            .unwrap();
        assert_eq!(mups.len(), 1); // 1XX

        let insert = vec![vec![1u8, 0, 1]];
        oracle.add_row(&insert[0]);
        let mut cache = CoverageCache::new(64);
        let outcome = apply_insert_delta(&oracle, &mut cache, 1, &mut mups, &insert);
        assert_eq!(
            outcome,
            DeltaOutcome {
                retired: 1,
                discovered: 2
            }
        );
        mups.sort();
        let expected = DeepDiver::default()
            .find_mups_with_oracle(&oracle, 1)
            .unwrap();
        let mut expected = expected;
        expected.sort();
        assert_eq!(mups, expected);
    }

    /// An insert matching no MUP leaves the frontier untouched without any
    /// oracle traffic beyond the match filter.
    #[test]
    fn unrelated_insert_is_a_no_op() {
        let rows = [vec![0u8, 1, 0], vec![0, 0, 1]];
        let ds = Dataset::from_rows(Schema::binary(3).unwrap(), &rows).unwrap();
        let mut oracle = CoverageOracle::from_dataset(&ds);
        let mut mups = DeepDiver::default()
            .find_mups_with_oracle(&oracle, 1)
            .unwrap();
        let before = mups.clone();
        // (0,1,0) is already present: it matches the covered region only.
        let insert = vec![vec![0u8, 1, 0]];
        oracle.add_row(&insert[0]);
        let mut cache = CoverageCache::new(64);
        let outcome = apply_insert_delta(&oracle, &mut cache, 1, &mut mups, &insert);
        assert_eq!(outcome, DeltaOutcome::default());
        assert_eq!(mups, before);
    }

    /// The mirror of `insert_retires_mup_and_discovers_frontier`: deleting
    /// the tuple again must collapse the two replacement MUPs back into the
    /// single dominating one, agreeing with a fresh DEEPDIVER run.
    #[test]
    fn delete_restores_the_dominating_mup() {
        let rows = [
            vec![0u8, 1, 0],
            vec![0, 0, 1],
            vec![0, 0, 0],
            vec![0, 1, 1],
            vec![0, 0, 1],
            vec![1, 0, 1],
        ];
        let ds = Dataset::from_rows(Schema::binary(3).unwrap(), &rows).unwrap();
        let mut oracle = CoverageOracle::from_dataset(&ds);
        let mut mups = DeepDiver::default()
            .find_mups_with_oracle(&oracle, 1)
            .unwrap();
        assert_eq!(mups.len(), 2); // 11X, 1X0

        let delete = vec![vec![1u8, 0, 1]];
        assert!(oracle.remove_row(&delete[0]));
        let mut cache = CoverageCache::new(64);
        let outcome = apply_delete_delta(&oracle, &mut cache, 1, &mut mups, &delete);
        assert_eq!(
            outcome,
            DeltaOutcome {
                retired: 2,
                discovered: 1
            }
        );
        mups.sort();
        let mut expected = DeepDiver::default()
            .find_mups_with_oracle(&oracle, 1)
            .unwrap();
        expected.sort();
        assert_eq!(mups, expected);
        assert_eq!(mups[0].to_string(), "1XX");
    }

    /// Deleting one of several copies leaves every pattern covered: no MUP
    /// changes at all.
    #[test]
    fn redundant_delete_is_a_no_op() {
        let rows = [vec![0u8, 0], vec![0, 0], vec![0, 1], vec![1, 0]];
        let ds = Dataset::from_rows(Schema::binary(2).unwrap(), &rows).unwrap();
        let mut oracle = CoverageOracle::from_dataset(&ds);
        let mut mups = DeepDiver::default()
            .find_mups_with_oracle(&oracle, 1)
            .unwrap();
        let before = {
            let mut m = mups.clone();
            m.sort();
            m
        };
        let delete = vec![vec![0u8, 0]]; // still one copy left
        assert!(oracle.remove_row(&delete[0]));
        let mut cache = CoverageCache::new(64);
        let outcome = apply_delete_delta(&oracle, &mut cache, 1, &mut mups, &delete);
        assert_eq!(outcome, DeltaOutcome::default());
        mups.sort();
        assert_eq!(mups, before);
    }

    /// A batch delete that empties the dataset leaves the root as the only
    /// MUP, retiring everything else.
    #[test]
    fn deleting_everything_leaves_the_root() {
        let rows = [vec![0u8, 1], vec![1, 0]];
        let ds = Dataset::from_rows(Schema::binary(2).unwrap(), &rows).unwrap();
        let mut oracle = CoverageOracle::from_dataset(&ds);
        let mut mups = DeepDiver::default()
            .find_mups_with_oracle(&oracle, 1)
            .unwrap();
        assert!(!mups.is_empty());
        let deletes: Vec<Vec<u8>> = rows.to_vec();
        for row in &deletes {
            assert!(oracle.remove_row(row));
        }
        let mut cache = CoverageCache::new(64);
        apply_delete_delta(&oracle, &mut cache, 1, &mut mups, &deletes);
        mups.sort();
        assert_eq!(mups, vec![Pattern::all_x(2)]);
    }

    /// A matching insert that does not lift the MUP over τ keeps it.
    #[test]
    fn insufficient_insert_keeps_mup() {
        let rows = [vec![0u8, 0], vec![0, 1], vec![0, 0]];
        let ds = Dataset::from_rows(Schema::binary(2).unwrap(), &rows).unwrap();
        let mut oracle = CoverageOracle::from_dataset(&ds);
        let tau = 2u64;
        let mut mups = DeepDiver::default()
            .find_mups_with_oracle(&oracle, tau)
            .unwrap();
        assert!(mups.iter().any(|m| m.to_string() == "1X"));
        let insert = vec![vec![1u8, 0]]; // cov(1X) 0 → 1, still < 2
        oracle.add_row(&insert[0]);
        let mut cache = CoverageCache::new(64);
        let outcome = apply_insert_delta(&oracle, &mut cache, tau, &mut mups, &insert);
        assert_eq!(outcome, DeltaOutcome::default());
        assert!(mups.iter().any(|m| m.to_string() == "1X"));
    }
}
