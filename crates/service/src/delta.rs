//! Delta maintenance: how a batch of inserted tuples moves the MUP frontier.
//!
//! Under a fixed threshold, inserts only *increase* coverage, so the MUP set
//! moves strictly downward: a MUP matching an inserted tuple may become
//! covered (it retires), and its replacements are exactly the maximal
//! uncovered patterns in the pattern-graph region below it
//! ([`coverage_core::graph::maximal_uncovered_below`]). MUPs matching no
//! inserted tuple keep their coverage — and their status — untouched, so a
//! single insert re-probes only the `≲ 2^level` patterns around the frontier
//! it actually touches instead of re-running discovery over the whole graph.

use std::collections::HashSet;

use coverage_core::graph::maximal_uncovered_below;
use coverage_core::pattern::Pattern;
use coverage_index::CoverageOracle;

use crate::cache::CoverageCache;

/// What an insert delta did to the MUP set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// MUPs that became covered and left the frontier.
    pub retired: usize,
    /// New MUPs discovered below retired ones.
    pub discovered: usize,
}

/// Coverage of `codes` through the memo cache.
pub(crate) fn coverage_cached(
    oracle: &CoverageOracle,
    cache: &mut CoverageCache,
    codes: &[u8],
) -> u64 {
    if let Some(v) = cache.get(codes) {
        return v;
    }
    let v = oracle.coverage(codes);
    cache.insert(codes, v);
    v
}

/// Updates `mups` in place for a batch of freshly ingested rows (the oracle
/// must already include them). Only valid when the resolved threshold is
/// unchanged; a shifted rate threshold requires a full recompute because
/// previously covered patterns anywhere may have dropped below the new τ.
pub(crate) fn apply_insert_delta(
    oracle: &CoverageOracle,
    cache: &mut CoverageCache,
    tau: u64,
    mups: &mut Vec<Pattern>,
    rows: &[Vec<u8>],
) -> DeltaOutcome {
    let cards = oracle.cardinalities().to_vec();
    let affected: Vec<Pattern> = mups
        .iter()
        .filter(|m| rows.iter().any(|r| m.matches(r)))
        .cloned()
        .collect();
    if affected.is_empty() {
        return DeltaOutcome::default();
    }
    let retired: HashSet<Pattern> = affected
        .into_iter()
        .filter(|m| coverage_cached(oracle, cache, m.codes()) >= tau)
        .collect();
    if retired.is_empty() {
        return DeltaOutcome::default();
    }
    mups.retain(|m| !retired.contains(m));
    // Walks from different retired MUPs can meet at a shared descendant;
    // the set keeps each new MUP once.
    let mut discovered: HashSet<Pattern> = HashSet::new();
    for root in &retired {
        discovered.extend(maximal_uncovered_below(root, &cards, |p| {
            coverage_cached(oracle, cache, p.codes()) >= tau
        }));
    }
    let outcome = DeltaOutcome {
        retired: retired.len(),
        discovered: discovered.len(),
    };
    mups.extend(discovered);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::mup::{DeepDiver, MupAlgorithm};
    use coverage_data::{Dataset, Schema};

    /// Example 1 of the paper plus a streamed insert: the delta must agree
    /// with re-running DEEPDIVER on the extended dataset.
    #[test]
    fn insert_retires_mup_and_discovers_frontier() {
        let rows = [
            vec![0u8, 1, 0],
            vec![0, 0, 1],
            vec![0, 0, 0],
            vec![0, 1, 1],
            vec![0, 0, 1],
        ];
        let ds = Dataset::from_rows(Schema::binary(3).unwrap(), &rows).unwrap();
        let mut oracle = CoverageOracle::from_dataset(&ds);
        let mut mups = DeepDiver::default()
            .find_mups_with_oracle(&oracle, 1)
            .unwrap();
        assert_eq!(mups.len(), 1); // 1XX

        let insert = vec![vec![1u8, 0, 1]];
        oracle.add_row(&insert[0]);
        let mut cache = CoverageCache::new(64);
        let outcome = apply_insert_delta(&oracle, &mut cache, 1, &mut mups, &insert);
        assert_eq!(
            outcome,
            DeltaOutcome {
                retired: 1,
                discovered: 2
            }
        );
        mups.sort();
        let expected = DeepDiver::default()
            .find_mups_with_oracle(&oracle, 1)
            .unwrap();
        let mut expected = expected;
        expected.sort();
        assert_eq!(mups, expected);
    }

    /// An insert matching no MUP leaves the frontier untouched without any
    /// oracle traffic beyond the match filter.
    #[test]
    fn unrelated_insert_is_a_no_op() {
        let rows = [vec![0u8, 1, 0], vec![0, 0, 1]];
        let ds = Dataset::from_rows(Schema::binary(3).unwrap(), &rows).unwrap();
        let mut oracle = CoverageOracle::from_dataset(&ds);
        let mut mups = DeepDiver::default()
            .find_mups_with_oracle(&oracle, 1)
            .unwrap();
        let before = mups.clone();
        // (0,1,0) is already present: it matches the covered region only.
        let insert = vec![vec![0u8, 1, 0]];
        oracle.add_row(&insert[0]);
        let mut cache = CoverageCache::new(64);
        let outcome = apply_insert_delta(&oracle, &mut cache, 1, &mut mups, &insert);
        assert_eq!(outcome, DeltaOutcome::default());
        assert_eq!(mups, before);
    }

    /// A matching insert that does not lift the MUP over τ keeps it.
    #[test]
    fn insufficient_insert_keeps_mup() {
        let rows = [vec![0u8, 0], vec![0, 1], vec![0, 0]];
        let ds = Dataset::from_rows(Schema::binary(2).unwrap(), &rows).unwrap();
        let mut oracle = CoverageOracle::from_dataset(&ds);
        let tau = 2u64;
        let mut mups = DeepDiver::default()
            .find_mups_with_oracle(&oracle, tau)
            .unwrap();
        assert!(mups.iter().any(|m| m.to_string() == "1X"));
        let insert = vec![vec![1u8, 0]]; // cov(1X) 0 → 1, still < 2
        oracle.add_row(&insert[0]);
        let mut cache = CoverageCache::new(64);
        let outcome = apply_insert_delta(&oracle, &mut cache, tau, &mut mups, &insert);
        assert_eq!(outcome, DeltaOutcome::default());
        assert!(mups.iter().any(|m| m.to_string() == "1X"));
    }
}
