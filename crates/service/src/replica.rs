//! Follower replication: tail a leader's op log and apply it through the
//! ordinary engine path.
//!
//! A follower (`mithra serve --follow <addr|path>`) bootstraps its engine
//! exactly like a leader (CSV audit or snapshot restore), then runs
//! [`run_follower`] on a background thread while the regular front end
//! serves read-only traffic. Two transports share one loop:
//!
//! * **TCP** (`--follow host:port`) — the follower sends `replicate`
//!   requests to the leader and pages through the returned entry batches;
//! * **shared file** (`--follow path`) — the follower re-reads the
//!   leader's log file directly, tolerating a torn final line exactly like
//!   recovery does.
//!
//! Replay is deterministic because entries store *raw* values and are
//! applied through the same encode path the leader used, in the same
//! order, against the same starting state — the `service_properties`
//! proptests pin this equivalence. Any apply failure therefore means the
//! follower was started from the wrong base state (or the log is corrupt),
//! and the loop stops with an error instead of serving divergent answers.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use coverage_index::CoverageBackend;

use crate::engine::CoverageEngine;
use crate::oplog::{read_entries_from, LogEntry, LoggedOp};
use crate::protocol::{Json, ServeError};
use crate::server::{encode_row, encode_rows_growing, with_engine_contained};

/// How long a follower waits for the leader's `replicate` response before
/// treating the connection as dead.
const REPLICATE_TIMEOUT: Duration = Duration::from_secs(30);

/// Shared replication progress, surfaced by the `stats` op as the
/// `"replication"` section on a follower.
#[derive(Debug)]
pub struct ReplicationStatus {
    source: String,
    applied_seq: AtomicU64,
    leader_seq: AtomicU64,
    entries_applied: AtomicU64,
    rounds: AtomicU64,
    errors: AtomicU64,
}

impl ReplicationStatus {
    /// Fresh progress for a follower tailing `source` (display form),
    /// starting from `applied_seq` (the snapshot anchor it booted from).
    pub fn new(source: impl Into<String>, applied_seq: u64) -> Self {
        ReplicationStatus {
            source: source.into(),
            applied_seq: AtomicU64::new(applied_seq),
            leader_seq: AtomicU64::new(applied_seq),
            entries_applied: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// The leader address or log path being tailed, for display.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The last log seq applied to the local engine.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq.load(Ordering::Acquire)
    }

    /// The leader's last known seq (from the most recent fetch).
    pub fn leader_seq(&self) -> u64 {
        self.leader_seq.load(Ordering::Acquire)
    }

    /// How far behind the leader this follower is, in entries.
    pub fn lag(&self) -> u64 {
        self.leader_seq().saturating_sub(self.applied_seq())
    }

    /// Total entries applied since this follower started.
    pub fn entries_applied(&self) -> u64 {
        self.entries_applied.load(Ordering::Relaxed)
    }

    /// Total fetch rounds (including empty ones).
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Transient fetch errors survived (reconnects, bad responses).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    fn record_applied(&self, seq: u64) {
        self.applied_seq.store(seq, Ordering::Release);
        self.entries_applied.fetch_add(1, Ordering::Relaxed);
    }
}

/// Where a follower reads the leader's log from (`--follow <addr|path>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaSource {
    /// A leader's TCP address; entries arrive via the `replicate` op.
    Tcp(String),
    /// The leader's log file on shared storage; entries are re-read.
    File(PathBuf),
}

impl ReplicaSource {
    /// Classifies a `--follow` argument: an existing path is a file;
    /// otherwise `host:port` shapes (a numeric final `:` segment) are TCP
    /// and everything else is treated as a not-yet-created log path.
    pub fn parse(spec: &str) -> ReplicaSource {
        if !Path::new(spec).exists() {
            if let Some((host, port)) = spec.rsplit_once(':') {
                if !host.is_empty() && !port.is_empty() && port.bytes().all(|b| b.is_ascii_digit())
                {
                    return ReplicaSource::Tcp(spec.to_string());
                }
            }
        }
        ReplicaSource::File(PathBuf::from(spec))
    }

    /// Display form (what [`ReplicationStatus::source`] reports).
    pub fn describe(&self) -> String {
        match self {
            ReplicaSource::Tcp(addr) => format!("tcp://{addr}"),
            ReplicaSource::File(path) => format!("file://{}", path.display()),
        }
    }
}

/// Applies one logged op through the ordinary engine path. Inserts always
/// use the growing encode (a leader only logs ops it accepted, so any
/// growth a logged insert implies was legitimate — replaying it via the
/// strict path would reject the very rows that grew the dictionary).
pub fn apply_entry<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    op: &LoggedOp,
) -> Result<(), ServeError> {
    match op {
        LoggedOp::Insert { rows } => {
            let coded = encode_rows_growing(engine, rows)?;
            engine
                .insert_batch(&coded)
                .map_err(ServeError::from_service)
        }
        LoggedOp::Delete { rows } => {
            let coded: Vec<Vec<u8>> = rows
                .iter()
                .map(|r| encode_row(engine.dataset().schema(), r))
                .collect::<Result<_, _>>()?;
            engine
                .remove_batch(&coded)
                .map_err(ServeError::from_service)
        }
        LoggedOp::Grow { attribute, value } => {
            let index = engine
                .dataset()
                .schema()
                .index_of(attribute)
                .map_err(ServeError::from_data)?;
            engine
                .grow_value(index, value)
                .map(|_| ())
                .map_err(ServeError::from_service)
        }
    }
}

/// Replays log entries with `seq > anchor` into an engine (leader startup
/// recovery and in-process catch-up both use this). Returns the last seq
/// applied (= `anchor` if the tail is empty).
pub fn replay_entries<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    entries: &[LogEntry],
    anchor: u64,
) -> Result<u64, String> {
    let mut applied = anchor;
    for entry in entries {
        if entry.seq <= applied {
            continue;
        }
        if entry.seq != applied + 1 {
            return Err(format!(
                "op log jumps from seq {applied} to {}; the snapshot predates the retained log",
                entry.seq
            ));
        }
        apply_entry(engine, &entry.op)
            .map_err(|e| format!("replaying op log seq {}: {}", entry.seq, e.message))?;
        applied = entry.seq;
    }
    Ok(applied)
}

/// One fetched page of the leader's log.
struct Batch {
    entries: Vec<LogEntry>,
    /// The leader's last seq, when the transport reports it (TCP does).
    leader_seq: Option<u64>,
}

enum FetchError {
    /// Retry after a pause (connection refused, mid-restart, bad line).
    Transient(String),
    /// Stop the follower (leader refused, corrupt log, version skew).
    Fatal(String),
}

fn fetch_file(path: &Path, from: u64) -> Result<Batch, FetchError> {
    match read_entries_from(path, from) {
        Ok(entries) => {
            let leader_seq = entries.last().map(|e| e.seq);
            Ok(Batch {
                entries,
                leader_seq,
            })
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidData => Err(FetchError::Fatal(format!(
            "leader log {} unreadable: {e}",
            path.display()
        ))),
        Err(e) => Err(FetchError::Transient(e.to_string())),
    }
}

/// A persistent `replicate` conversation with the leader.
struct TcpFetcher {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpFetcher {
    fn connect(addr: &str) -> io::Result<TcpFetcher> {
        let writer = TcpStream::connect(addr)?;
        writer.set_read_timeout(Some(REPLICATE_TIMEOUT))?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(TcpFetcher { reader, writer })
    }
}

fn fetch_tcp(conn: &mut Option<TcpFetcher>, addr: &str, from: u64) -> Result<Batch, FetchError> {
    let transient = |e: io::Error| FetchError::Transient(e.to_string());
    if conn.is_none() {
        *conn = Some(TcpFetcher::connect(addr).map_err(transient)?);
    }
    let Some(fetcher) = conn.as_mut() else {
        return Err(FetchError::Transient(
            "replication connection missing".into(),
        ));
    };
    writeln!(fetcher.writer, "{{\"op\":\"replicate\",\"from\":{from}}}").map_err(transient)?;
    let mut line = String::new();
    if fetcher.reader.read_line(&mut line).map_err(transient)? == 0 {
        return Err(FetchError::Transient("leader closed the connection".into()));
    }
    let doc = Json::parse(line.trim())
        .map_err(|e| FetchError::Transient(format!("bad replicate response: {e}")))?;
    if doc.get("ok").and_then(Json::as_bool) != Some(true) {
        let message = doc
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("replicate rejected");
        return Err(FetchError::Fatal(format!(
            "leader rejected replicate: {message}"
        )));
    }
    let leader_seq = doc.get("last_seq").and_then(Json::as_u64);
    let items = doc
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| FetchError::Transient("replicate response missing entries".into()))?;
    let entries = items
        .iter()
        .map(LogEntry::from_json)
        .collect::<Result<Vec<LogEntry>, String>>()
        .map_err(|e| FetchError::Fatal(format!("undecodable replicate entry: {e}")))?;
    Ok(Batch {
        entries,
        leader_seq,
    })
}

/// Tails the leader's log and applies every entry to the shared engine,
/// updating `status` as it goes. Runs until `stop` is set (clean `Ok`) or
/// a fatal condition is hit: the leader refuses replication, the log is
/// corrupt, or — the serious one — an entry fails to apply, which means
/// this follower's base state diverged from the leader's and read-only
/// answers can no longer be trusted.
///
/// Transient fetch failures (leader restarting, connection drops) are
/// counted in [`ReplicationStatus::errors`] and retried after `poll`;
/// catch-up pages are fetched back-to-back without sleeping.
pub fn run_follower<B: CoverageBackend>(
    engine: Arc<Mutex<CoverageEngine<B>>>,
    source: ReplicaSource,
    status: Arc<ReplicationStatus>,
    poll: Duration,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    let mut conn: Option<TcpFetcher> = None;
    let mut was_failing = false;
    while !stop.load(Ordering::Relaxed) {
        let from = status.applied_seq() + 1;
        let fetched = match &source {
            ReplicaSource::File(path) => fetch_file(path, from),
            ReplicaSource::Tcp(addr) => fetch_tcp(&mut conn, addr, from),
        };
        status.rounds.fetch_add(1, Ordering::Relaxed);
        let batch = match fetched {
            Ok(batch) => batch,
            Err(FetchError::Fatal(message)) => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, message));
            }
            Err(FetchError::Transient(message)) => {
                status.errors.fetch_add(1, Ordering::Relaxed);
                // Announce the outage once, not every poll interval.
                if !was_failing {
                    was_failing = true;
                    eprintln!(
                        "follower: replication from {} interrupted: {message} (retrying)",
                        status.source()
                    );
                }
                conn = None;
                std::thread::sleep(poll);
                continue;
            }
        };
        was_failing = false;
        if let Some(leader) = batch.leader_seq {
            status.leader_seq.store(leader, Ordering::Release);
        }
        if batch.entries.is_empty() {
            std::thread::sleep(poll);
            continue;
        }
        for entry in &batch.entries {
            if entry.seq <= status.applied_seq() {
                continue; // already applied (overlapping file re-read)
            }
            if entry.seq != status.applied_seq() + 1 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "leader log jumps from seq {} to {}; restart this follower from a \
                         fresh snapshot",
                        status.applied_seq(),
                        entry.seq
                    ),
                ));
            }
            with_engine_contained(&engine, Err, |engine| apply_entry(engine, &entry.op)).map_err(
                |e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "applying replicated seq {} failed ({}); this follower's base \
                             state diverged from the leader",
                            entry.seq, e.message
                        ),
                    )
                },
            )?;
            status.record_applied(entry.seq);
        }
        // More might be waiting (we page REPLICATE_BATCH_LIMIT at a time):
        // loop again immediately while catching up.
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oplog::{OpLog, SyncPolicy};
    use coverage_core::Threshold;
    use coverage_data::{Attribute, Dataset, Schema};

    fn engine() -> CoverageEngine {
        let schema = Schema::new(vec![
            Attribute::with_values("sex", ["m", "f"]).unwrap(),
            Attribute::with_values("race", ["white", "black", "asian"]).unwrap(),
        ])
        .unwrap();
        let ds =
            Dataset::from_rows(schema, &[vec![0, 0], vec![0, 1], vec![1, 0], vec![0, 0]]).unwrap();
        CoverageEngine::new(ds, Threshold::Count(1)).unwrap()
    }

    #[test]
    fn source_classification() {
        assert_eq!(
            ReplicaSource::parse("127.0.0.1:7400"),
            ReplicaSource::Tcp("127.0.0.1:7400".into())
        );
        assert_eq!(
            ReplicaSource::parse("leader.internal:7400"),
            ReplicaSource::Tcp("leader.internal:7400".into())
        );
        assert_eq!(
            ReplicaSource::parse("/tmp/leader.oplog"),
            ReplicaSource::File(PathBuf::from("/tmp/leader.oplog"))
        );
        // A relative name with no port shape is a (future) file path.
        assert_eq!(
            ReplicaSource::parse("leader.oplog"),
            ReplicaSource::File(PathBuf::from("leader.oplog"))
        );
        // An existing file wins even if its name looks like host:port.
        let dir = std::env::temp_dir().join(format!("mithra-replica-src-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tricky = dir.join("host:7400");
        std::fs::write(&tricky, "").unwrap();
        assert_eq!(
            ReplicaSource::parse(tricky.to_str().unwrap()),
            ReplicaSource::File(tricky.clone())
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_matches_direct_application() {
        let mut live = engine();
        let mut log_path = std::env::temp_dir();
        log_path.push(format!(
            "mithra-replica-replay-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&log_path);
        let mut log = OpLog::open(&log_path, SyncPolicy::Off).unwrap();
        let ops = vec![
            LoggedOp::Insert {
                rows: vec![vec!["f".into(), "black".into()]],
            },
            LoggedOp::Grow {
                attribute: "race".into(),
                value: "hispanic".into(),
            },
            LoggedOp::Insert {
                rows: vec![vec!["m".into(), "hispanic".into()]],
            },
            LoggedOp::Delete {
                rows: vec![vec!["m".into(), "white".into()]],
            },
        ];
        for op in &ops {
            apply_entry(&mut live, op).unwrap();
            log.append(op.clone()).unwrap();
        }
        drop(log);
        let mut replayed = engine();
        let entries = read_entries_from(&log_path, 1).unwrap();
        assert_eq!(replay_entries(&mut replayed, &entries, 0).unwrap(), 4);
        assert_eq!(replayed.dataset().len(), live.dataset().len());
        assert_eq!(replayed.mups(), live.mups());
        assert_eq!(
            replayed.dataset().schema().cardinalities(),
            live.dataset().schema().cardinalities()
        );
        let _ = std::fs::remove_file(&log_path);
    }

    #[test]
    fn replay_refuses_a_gap() {
        let mut target = engine();
        let entries = vec![LogEntry {
            seq: 5,
            op: LoggedOp::Grow {
                attribute: "race".into(),
                value: "hispanic".into(),
            },
        }];
        // Anchor 0 but the log starts at 5: the snapshot predates retention.
        let err = replay_entries(&mut target, &entries, 0).unwrap_err();
        assert!(err.contains("jumps"), "{err}");
        // Anchor 4 lines up and replays.
        assert_eq!(replay_entries(&mut target, &entries, 4).unwrap(), 5);
        // Already-applied entries are skipped idempotently.
        assert_eq!(replay_entries(&mut target, &entries, 5).unwrap(), 5);
    }

    #[test]
    fn grow_replay_through_logged_insert_growth_is_deterministic() {
        // Leader in --grow-schema mode: the growth is implied by the raw
        // values of the logged insert, and replay must re-grow identically.
        let mut leader = engine();
        let op = LoggedOp::Insert {
            rows: vec![vec!["nonbinary".into(), "asian".into()]],
        };
        apply_entry(&mut leader, &op).unwrap();
        assert_eq!(leader.dataset().schema().cardinalities(), vec![3, 3]);
        let mut follower = engine();
        apply_entry(&mut follower, &op).unwrap();
        assert_eq!(follower.mups(), leader.mups());
        assert_eq!(
            follower.dataset().schema().cardinalities(),
            leader.dataset().schema().cardinalities()
        );
    }

    #[test]
    fn status_tracks_lag() {
        let status = ReplicationStatus::new("tcp://127.0.0.1:1", 10);
        assert_eq!(status.applied_seq(), 10);
        assert_eq!(status.lag(), 0);
        status.leader_seq.store(15, Ordering::Release);
        assert_eq!(status.lag(), 5);
        status.record_applied(11);
        assert_eq!(status.lag(), 4);
        assert_eq!(status.entries_applied(), 1);
    }
}
