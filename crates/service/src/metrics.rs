//! Allocation-free serving metrics: per-op latency histograms plus
//! batching/admission counters.
//!
//! Latencies are recorded into log2-bucketed histograms (`bucket =
//! floor(log2(ns))`, 64 buckets of one `AtomicU64` each), so the hot path
//! is one relaxed fetch-add — no locks, no allocation, no floating point.
//! Percentiles are reconstructed from a snapshot by walking the cumulative
//! counts and reporting the upper edge of the bucket that crosses the
//! rank; the answer is exact to within a factor of 2, which is plenty to
//! tell 5 µs from 5 ms.
//!
//! One [`ServeMetrics`] is shared (via `Arc`) by every connection of a
//! front end and surfaced through the `stats` op as the `"io"` section.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::protocol::write_json_string;

/// Number of log2 buckets: covers 1 ns .. 2^63 ns (≈ 292 years).
const BUCKETS: usize = 64;

/// The operation classes that get their own latency histogram.
///
/// `insert`/`delete` dominate serving traffic and have batched fast paths;
/// everything else (grow, mups, coverage, enhance, stats, snapshot,
/// restore, plus error responses) lands in `Other` — splitting those
/// further would cost memory without informing any tuning decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// `insert` requests.
    Insert,
    /// `delete` requests.
    Delete,
    /// Everything else, including rejected requests.
    Other,
}

impl OpClass {
    /// The `stats` wire label for this class.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Insert => "insert",
            OpClass::Delete => "delete",
            OpClass::Other => "other",
        }
    }

    const ALL: [OpClass; 3] = [OpClass::Insert, OpClass::Delete, OpClass::Other];

    fn index(self) -> usize {
        match self {
            OpClass::Insert => 0,
            OpClass::Delete => 1,
            OpClass::Other => 2,
        }
    }
}

/// A log2-bucketed latency histogram. Recording is lock-free and
/// allocation-free; reading takes a relaxed snapshot (counts recorded
/// concurrently with a read may or may not be included, which is fine for
/// monitoring).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// Records one latency observation, in nanoseconds.
    pub fn record(&self, nanos: u64) {
        // bucket = floor(log2(ns)), with 0 ns sharing bucket 0 with 1 ns.
        let bucket = 63 - nanos.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a relaxed snapshot of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot { counts }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`]'s buckets.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The latency (in ns) at quantile `q` in `[0, 1]`: the upper edge of
    /// the bucket containing that rank, i.e. an overestimate by at most
    /// 2×. Returns 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // rank ∈ [1, total]: the 1-based index of the target observation.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper edge of bucket i is 2^(i+1) − 1 ns.
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        unreachable!("rank <= total");
    }
}

/// Shared counters + histograms for one serving front end.
///
/// All fields are atomics so the structure can sit behind a plain `Arc`
/// and be hammered from every connection without coordination.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    hist: [LatencyHistogram; 3],
    /// Total requests answered (success or error).
    pub requests: AtomicU64,
    /// Insert requests answered successfully.
    pub insert_requests: AtomicU64,
    /// `insert_batch` calls made on the engine for those requests. When
    /// cross-connection coalescing is working this is well below
    /// `insert_requests`.
    pub insert_engine_batches: AtomicU64,
    /// Insert requests that shared their engine batch with at least one
    /// other request (the acceptance metric for coalescing).
    pub coalesced_inserts: AtomicU64,
    /// Delete requests answered successfully.
    pub delete_requests: AtomicU64,
    /// `remove_batch` calls made on the engine for those requests.
    pub delete_engine_batches: AtomicU64,
    /// Delete requests that shared their engine batch with at least one
    /// other request.
    pub coalesced_deletes: AtomicU64,
    /// Requests shed with an `overloaded` response by admission control.
    pub shed_overloaded: AtomicU64,
    /// Connections accepted over the lifetime of the front end.
    pub connections: AtomicU64,
}

impl ServeMetrics {
    /// Records a completed request of class `op` that took `nanos`.
    pub fn record(&self, op: OpClass, nanos: u64) {
        self.hist[op.index()].record(nanos);
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps a counter by `n` (relaxed; helper to keep call sites short).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Appends the `stats` response's `"io"` section: counters plus
    /// per-op `count`/`p50`/`p95`/`p99` (nanoseconds).
    pub fn write_json(&self, out: &mut String) {
        self.write_json_fields(out);
        out.push('}');
    }

    /// Like [`ServeMetrics::write_json`] but leaves the object **open** so
    /// the caller can splice in extra fields (the multi-dataset front end
    /// appends a per-dataset counter array) before closing the brace.
    pub fn write_json_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"requests\":{},\"connections\":{},\"insert_requests\":{},\
             \"insert_engine_batches\":{},\"coalesced_inserts\":{},\
             \"delete_requests\":{},\"delete_engine_batches\":{},\
             \"coalesced_deletes\":{},\
             \"shed_overloaded\":{},\"latency_ns\":{{",
            self.requests.load(Ordering::Relaxed),
            self.connections.load(Ordering::Relaxed),
            self.insert_requests.load(Ordering::Relaxed),
            self.insert_engine_batches.load(Ordering::Relaxed),
            self.coalesced_inserts.load(Ordering::Relaxed),
            self.delete_requests.load(Ordering::Relaxed),
            self.delete_engine_batches.load(Ordering::Relaxed),
            self.coalesced_deletes.load(Ordering::Relaxed),
            self.shed_overloaded.load(Ordering::Relaxed),
        );
        for (i, op) in OpClass::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let snap = self.hist[op.index()].snapshot();
            write_json_string(out, op.label());
            let _ = write!(
                out,
                ":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                snap.count(),
                snap.quantile(0.50),
                snap.quantile(0.95),
                snap.quantile(0.99),
            );
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Json;

    #[test]
    fn buckets_are_log2() {
        let h = LatencyHistogram::default();
        h.record(0); // shares bucket 0 with 1 ns
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.counts[0], 2);
        assert_eq!(snap.counts[1], 2);
        assert_eq!(snap.counts[10], 1);
    }

    #[test]
    fn quantiles_report_bucket_upper_edges() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 127]
        }
        h.record(1_000_000); // bucket 19: [524288, 1048575]
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.50), 127);
        assert_eq!(snap.quantile(0.99), 127);
        assert_eq!(snap.quantile(1.0), (2u64 << 19) - 1);
        // Empty histogram answers 0 everywhere.
        assert_eq!(LatencyHistogram::default().snapshot().quantile(0.5), 0);
    }

    #[test]
    fn stats_section_is_valid_json() {
        let m = ServeMetrics::default();
        m.record(OpClass::Insert, 5_000);
        m.record(OpClass::Other, 100);
        ServeMetrics::add(&m.insert_requests, 1);
        ServeMetrics::add(&m.insert_engine_batches, 1);
        let mut out = String::new();
        m.write_json(&mut out);
        let doc = Json::parse(&out).expect("io section parses");
        assert_eq!(doc.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("insert_requests").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("delete_requests").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("coalesced_deletes").and_then(Json::as_u64), Some(0));
        let lat = doc.get("latency_ns").unwrap();
        assert_eq!(
            lat.get("insert")
                .and_then(|v| v.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            lat.get("insert")
                .and_then(|v| v.get("p50"))
                .and_then(Json::as_u64),
            Some(8191)
        );
    }
}
