//! A minimal readiness poller over raw file descriptors.
//!
//! The offline build policy (no new external dependencies) rules out
//! `mio`/`tokio`, so this is the same move as `vendor/rand` and
//! `vendor/csv`: the thin slice of the capability the repo actually
//! needs, in-tree. On Linux it wraps `epoll` through three hand-declared
//! `extern "C"` bindings (the symbols live in the libc every Rust binary
//! already links — this adds no dependency). Elsewhere it degrades to an
//! "always ready" poller: correctness is preserved because the event loop
//! only *attempts* non-blocking reads/writes on readiness and handles
//! `WouldBlock`, so spurious readiness costs a syscall, not a bug; a
//! short sleep keeps the degraded loop from spinning hot.
//!
//! The poller is level-triggered: a token keeps reporting ready for as
//! long as the condition holds. That matches the loop's drain-then-retry
//! structure and avoids the lost-wakeup sharp edges of edge-triggering.

use std::io;
use std::os::fd::RawFd;

/// Which readiness conditions a registration is interested in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer closed).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readable and writable — while a response backlog is draining.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Writable only — backpressure: stop reading until the peer drains.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (includes peer hang-up, which reads as EOF).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    // `struct epoll_event` from <sys/epoll.h>. On x86-64 the kernel ABI
    // packs it (no padding between the u32 and the u64); other
    // architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;

    const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// The Linux epoll-backed poller.
    #[derive(Debug)]
    pub struct Poller {
        epfd: c_int,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 has no pointer arguments.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn mask(interest: Interest) -> u32 {
            let mut events = EPOLLRDHUP; // always learn about half-closes
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            events
        }

        fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
            let mut event = event;
            let ptr = event
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live EpollEvent.
            if unsafe { epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let event = EpollEvent {
                events: Self::mask(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_ADD, fd, Some(event))
        }

        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let event = EpollEvent {
                events: Self::mask(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_MOD, fd, Some(event))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = loop {
                // SAFETY: `buf` is a live array of `buf.len()` events.
                let n = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms)
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data,
                    // Errors and hang-ups surface as readability so the
                    // connection's next read observes EOF/ECONNRESET and
                    // tears the state down through the one cleanup path.
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: we own `epfd` and drop it exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::{Mutex, PoisonError};
    use std::time::Duration;

    /// Portable fallback: every registered fd reports ready on every wait.
    /// The event loop's non-blocking I/O + `WouldBlock` handling makes
    /// this correct (just less efficient); the sleep bounds the spin.
    #[derive(Debug)]
    pub struct Poller {
        registered: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(Vec::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push((fd, token, interest));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self
                .registered
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for slot in reg.iter_mut() {
                if slot.0 == fd {
                    *slot = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .retain(|slot| slot.0 != fd);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<()> {
            out.clear();
            std::thread::sleep(Duration::from_millis(5));
            let reg = self
                .registered
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for &(_, token, interest) in reg.iter() {
                out.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                });
            }
            Ok(())
        }
    }
}

/// A level-triggered readiness poller (epoll on Linux, a degraded
/// always-ready loop elsewhere).
///
/// Tokens are caller-chosen `u64`s; the poller hands them back verbatim in
/// [`Event`]s and never interprets them.
#[derive(Debug)]
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Creates a poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Starts watching `fd` under `token` for `interest`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Changes the interest set (and token) of an already-watched fd.
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.reregister(fd, token, interest)
    }

    /// Stops watching `fd`. Must be called before the fd is closed.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Blocks until at least one fd is ready (or `timeout_ms` elapses;
    /// `-1` means wait forever), filling `out` with the ready set.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        self.inner.wait(out, timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_reports_listener_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 1, Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        // Nothing pending yet: a zero-timeout wait comes back empty on
        // Linux (the fallback poller may report spuriously — allowed).
        poller.wait(&mut events, 0).unwrap();
        #[cfg(target_os = "linux")]
        assert!(events.is_empty(), "unexpected readiness: {events:?}");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        let (sock, _) = listener.accept().unwrap();
        drop(sock);
        poller.deregister(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn poller_tracks_stream_read_write_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 7, Interest::READ_WRITE)
            .unwrap();

        // A fresh socket: writable immediately, readable only after the
        // client sends.
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("event");
        assert!(ev.writable);

        client.write_all(b"ping\n").unwrap();
        // Wait until readability shows up (already true on the first wait
        // if the bytes landed fast).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            poller.wait(&mut events, 1000).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no readability");
        }

        // Narrow to write-only interest: readability stops being reported
        // even though bytes are pending (backpressure pause-read).
        poller
            .reregister(server.as_raw_fd(), 7, Interest::WRITE)
            .unwrap();
        poller.wait(&mut events, 100).unwrap();
        #[cfg(target_os = "linux")]
        assert!(
            events.iter().all(|e| e.token != 7 || !e.readable),
            "paused fd still reported readable: {events:?}"
        );

        poller.deregister(server.as_raw_fd()).unwrap();
        let mut buf = [0u8; 8];
        let mut server_blocking = server;
        server_blocking.set_nonblocking(false).unwrap();
        assert_eq!(server_blocking.read(&mut buf).unwrap(), 5);
    }
}
