//! Bounded LRU memo cache for pattern coverage.
//!
//! The engine asks the oracle for the same patterns over and over: a MUP is
//! re-probed on every batch that matches it, and delta walks revisit the
//! covered slab around the frontier. Raw coverage *counts* are cached (never
//! covered/uncovered booleans), so a shifting rate threshold never
//! invalidates an entry — only an inserted tuple does, and only for the
//! patterns that match it, because `cov(P)` counts exactly the rows matching
//! `P`.

use std::collections::HashMap;

use coverage_index::X;

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Slot {
    key: Box<[u8]>,
    value: u64,
    prev: usize,
    next: usize,
}

/// A bounded least-recently-used map from pattern codes to coverage counts.
///
/// Implemented as a slab of slots threaded on an intrusive doubly-linked
/// list (no external dependencies): `get`/`insert` are O(1);
/// [`Self::invalidate_matching`] is O(entries), run once per inserted tuple.
#[derive(Debug, Clone)]
pub struct CoverageCache {
    map: HashMap<Box<[u8]>, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    invalidated: u64,
}

impl CoverageCache {
    /// Creates a cache holding at most `capacity` patterns. A capacity of
    /// zero disables caching entirely (every probe misses, inserts are
    /// dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(4096)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            invalidated: 0,
        }
    }

    /// Number of cached patterns.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of cached patterns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of probes answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of probes that fell through to the oracle.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries dropped by [`Self::invalidate_matching`].
    pub fn invalidated(&self) -> u64 {
        self.invalidated
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up a pattern's cached coverage, refreshing its recency.
    pub fn get(&mut self, codes: &[u8]) -> Option<u64> {
        match self.map.get(codes).copied() {
            Some(i) => {
                self.hits += 1;
                if self.head != i {
                    self.unlink(i);
                    self.push_front(i);
                }
                Some(self.slots[i].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches a pattern's coverage, evicting the least-recently-used entry
    /// when full. Overwrites an existing entry for the same pattern.
    pub fn insert(&mut self, codes: &[u8], value: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(codes) {
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            let key = std::mem::take(&mut self.slots[lru].key);
            self.map.remove(&key);
            self.free.push(lru);
        }
        let key: Box<[u8]> = codes.to_vec().into_boxed_slice();
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    /// Drops every cached pattern that matches the inserted tuple — exactly
    /// the entries whose coverage the insert changed. All other entries stay
    /// valid because `cov(P)` only counts rows matching `P`.
    pub fn invalidate_matching(&mut self, tuple: &[u8]) {
        self.invalidate_matching_any(std::slice::from_ref(&tuple));
    }

    /// Batch form of [`Self::invalidate_matching`]: one O(entries) pass
    /// dropping every pattern that matches *any* of the inserted tuples,
    /// instead of one pass per tuple.
    pub fn invalidate_matching_any<R: AsRef<[u8]>>(&mut self, tuples: &[R]) {
        let stale: Vec<usize> = self
            .map
            .values()
            .copied()
            .filter(|&i| {
                let key = &self.slots[i].key;
                tuples.iter().any(|tuple| {
                    key.iter()
                        .zip(tuple.as_ref())
                        .all(|(&p, &v)| p == X || p == v)
                })
            })
            .collect();
        for i in stale {
            self.unlink(i);
            let key = std::mem::take(&mut self.slots[i].key);
            self.map.remove(&key);
            self.free.push(i);
            self.invalidated += 1;
        }
    }

    /// Drops all entries (counters are preserved).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip() {
        let mut cache = CoverageCache::new(4);
        assert_eq!(cache.get(&[1, X]), None);
        cache.insert(&[1, X], 7);
        assert_eq!(cache.get(&[1, X]), Some(7));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = CoverageCache::new(2);
        cache.insert(&[0], 10);
        cache.insert(&[1], 11);
        assert_eq!(cache.get(&[0]), Some(10)); // refresh [0]; LRU is now [1]
        cache.insert(&[2], 12);
        assert_eq!(cache.get(&[1]), None);
        assert_eq!(cache.get(&[0]), Some(10));
        assert_eq!(cache.get(&[2]), Some(12));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn overwrite_updates_value_and_recency() {
        let mut cache = CoverageCache::new(2);
        cache.insert(&[0], 1);
        cache.insert(&[1], 2);
        cache.insert(&[0], 3); // refresh [0]; LRU is [1]
        cache.insert(&[2], 4);
        assert_eq!(cache.get(&[0]), Some(3));
        assert_eq!(cache.get(&[1]), None);
    }

    #[test]
    fn invalidate_matching_drops_only_matching_patterns() {
        let mut cache = CoverageCache::new(8);
        cache.insert(&[1, X, X], 5); // matches tuple (1,0,1)
        cache.insert(&[X, 0, 1], 6); // matches
        cache.insert(&[0, X, X], 7); // does not match
        cache.insert(&[X, 1, X], 8); // does not match
        cache.invalidate_matching(&[1, 0, 1]);
        assert_eq!(cache.get(&[1, X, X]), None);
        assert_eq!(cache.get(&[X, 0, 1]), None);
        assert_eq!(cache.get(&[0, X, X]), Some(7));
        assert_eq!(cache.get(&[X, 1, X]), Some(8));
        assert_eq!(cache.invalidated(), 2);
    }

    #[test]
    fn batch_invalidation_matches_per_tuple_passes() {
        let patterns: [&[u8]; 5] = [&[1, X, X], &[X, 0, 1], &[0, X, X], &[X, 1, X], &[0, 1, 0]];
        let tuples = [[1u8, 0, 1], [0, 1, 0]];
        let mut per_tuple = CoverageCache::new(8);
        let mut batched = CoverageCache::new(8);
        for (v, p) in patterns.iter().enumerate() {
            per_tuple.insert(p, v as u64);
            batched.insert(p, v as u64);
        }
        for t in &tuples {
            per_tuple.invalidate_matching(t);
        }
        batched.invalidate_matching_any(&tuples);
        assert_eq!(per_tuple.invalidated(), batched.invalidated());
        for p in &patterns {
            assert_eq!(per_tuple.get(p), batched.get(p), "pattern {p:?}");
        }
    }

    #[test]
    fn reuses_freed_slots_after_invalidation() {
        let mut cache = CoverageCache::new(4);
        for v in 0..4u8 {
            cache.insert(&[v], v as u64);
        }
        cache.invalidate_matching(&[2]); // drops [2] and [X]-free others? no: only exact-match [2]
        assert_eq!(cache.len(), 3);
        cache.insert(&[9], 9);
        cache.insert(&[8], 8); // back at capacity — evicts LRU [0]
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.get(&[0]), None);
        assert_eq!(cache.get(&[9]), Some(9));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = CoverageCache::new(0);
        cache.insert(&[1], 1);
        assert_eq!(cache.get(&[1]), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let mut cache = CoverageCache::new(4);
        cache.insert(&[1], 1);
        let _ = cache.get(&[1]);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 1);
        cache.insert(&[2], 2);
        assert_eq!(cache.get(&[2]), Some(2));
    }
}
