//! # coverage-service
//!
//! The serving layer that turns the ICDE 2019 reproduction from an offline
//! batch job into a long-lived system: a [`CoverageEngine`] owns a mutable
//! dataset + coverage backend and maintains the MUP set **incrementally** as
//! tuples stream in, and a newline-delimited JSON protocol exposes it over
//! stdin/stdout or TCP (`mithra serve`).
//!
//! The engine is generic over [`coverage_index::CoverageBackend`]: the
//! default is the single-shard [`coverage_index::CoverageOracle`], while
//! `mithra serve --shards N` runs a [`ShardedCoverageEngine`] whose
//! [`coverage_index::ShardedOracle`] ingests batches and answers wide
//! probes with one thread per row shard.
//!
//! Modules:
//!
//! * [`engine`] — the incremental engine (insert/remove plus batch forms,
//!   value-dictionary growth, cached coverage queries, enhancement
//!   planning, rate-threshold re-resolution);
//! * [`delta`] — how a batch of inserts or deletes moves the MUP frontier
//!   (inserts retire covered MUPs and walk the region below them; deletes
//!   walk the deleted tuple's match sublattice and retire dominated MUPs);
//! * [`cache`] — the bounded LRU pattern-coverage memo, invalidated only
//!   for patterns matching the delta;
//! * [`snapshot`] — versioned on-disk engine state, so a restarted server
//!   resumes without a full re-audit; since v4 a snapshot carries the op-log
//!   sequence number it captured (`oplog_seq`), anchoring tail replay;
//! * [`oplog`] — the append-only durability log (`--oplog`): every applied
//!   mutation becomes one NDJSON entry with a dense sequence number, so
//!   recovery is snapshot + tail replay and followers can stream the tail;
//! * [`replica`] — read-only followers (`mithra serve --follow`): a
//!   background thread polls the leader's `replicate` op (or tails a shared
//!   log file) and applies entries through the ordinary engine path;
//! * [`tenant`] — multi-dataset tenancy (`mithra serve --datasets`): N
//!   engines behind one event loop, routed by the optional `"dataset"`
//!   request field;
//! * [`protocol`] — hand-rolled NDJSON request parsing and response
//!   serialization (no external dependencies), including the request
//!   envelope (optional client `id`, echoed back) and the stable
//!   machine-readable error-code table;
//! * [`server`] — the [`server::ServeOptions`] builder and the shared
//!   request dispatcher behind every front end: [`handle_line`] (one
//!   request in, one response out), [`serve_lines`] (stdin/stdout), and
//!   [`serve`] (TCP, in the [`server::IoMode`] of your choice);
//! * `event` (internal) — the default TCP front end: a readiness-driven
//!   event loop (epoll on Linux, portable fallback elsewhere) that
//!   multiplexes every connection on one thread, reassembles fragmented
//!   NDJSON frames incrementally, coalesces concurrent inserts into single
//!   engine batches, and sheds load with `overloaded` responses once the
//!   pending queue passes `--max-pending`;
//! * [`net`] — the in-tree poll shim over `std::net` the event loop runs
//!   on (hand-declared epoll FFI; no external dependencies);
//! * [`metrics`] — allocation-free log-bucketed latency histograms and
//!   serving counters, surfaced through the `stats` op's `"io"` section.
//!
//! The pre-redesign thread-per-connection pool survives as
//! `mithra serve --io blocking` for A/B comparison under `mithra loadgen`.
//!
//! ## Quickstart
//!
//! ```
//! use coverage_core::Threshold;
//! use coverage_data::{Dataset, Schema};
//! use coverage_service::CoverageEngine;
//!
//! // Example 1 of the paper: the lone MUP is 1XX…
//! let dataset = Dataset::from_rows(
//!     Schema::binary(3)?,
//!     &[vec![0, 1, 0], vec![0, 0, 1], vec![0, 0, 0], vec![0, 1, 1], vec![0, 0, 1]],
//! )?;
//! let mut engine = CoverageEngine::new(dataset, Threshold::Count(1))?;
//! assert_eq!(engine.mups().len(), 1);
//!
//! // …until a matching tuple arrives, which retires it incrementally.
//! engine.insert(&[1, 0, 1])?;
//! assert_eq!(
//!     engine.mups().iter().map(|m| m.to_string()).collect::<Vec<_>>(),
//!     ["11X", "1X0"]
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod cache;
pub mod delta;
pub mod engine;
mod event;
pub mod metrics;
pub mod net;
pub mod oplog;
pub mod protocol;
pub mod replica;
pub mod server;
pub mod snapshot;
pub mod tenant;

pub use cache::CoverageCache;
pub use delta::DeltaOutcome;
pub use engine::{CoverageEngine, EngineStats, DEFAULT_CACHE_CAPACITY};

/// The multi-core serving engine behind `mithra serve --shards N`: a
/// [`CoverageEngine`] over a row-sharded oracle.
pub type ShardedCoverageEngine = CoverageEngine<coverage_index::ShardedOracle>;

/// The compressed serving engine behind `mithra serve --backend compressed`:
/// a [`CoverageEngine`] over row shards of Roaring-style
/// [`coverage_index::CompressedOracle`] posting lists.
pub type CompressedCoverageEngine =
    CoverageEngine<coverage_index::ShardedOracle<coverage_index::CompressedOracle>>;
pub use metrics::ServeMetrics;
pub use oplog::{LogEntry, LoggedOp, OpLog, SyncPolicy, OPLOG_VERSION};
pub use replica::{apply_entry, replay_entries, run_follower, ReplicaSource, ReplicationStatus};
pub use server::{
    handle_line, serve, serve_lines, IoMode, ServeOptions, DEFAULT_MAX_PENDING, DEFAULT_WORKERS,
};
pub use snapshot::{
    load_snapshot, load_snapshot_anchored, load_snapshot_with_layout, save_snapshot,
    save_snapshot_anchored, snapshot_backend, SNAPSHOT_VERSION,
};
pub use tenant::{serve_tenants, DatasetCounters, TenantSpec};

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServiceError {
    /// The request was structurally valid but semantically rejected
    /// (arity mismatch, unknown value, out-of-range λ, …).
    BadRequest(String),
    /// A delete names more copies of a row than the dataset holds.
    RowNotFound(String),
    /// A snapshot could not be written, read, or understood.
    Snapshot(String),
    /// An underlying algorithm error (threshold resolution, enhancement).
    Core(coverage_core::CoverageError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadRequest(msg) => write!(f, "{msg}"),
            ServiceError::RowNotFound(msg) => write!(f, "{msg}"),
            ServiceError::Snapshot(msg) => write!(f, "snapshot: {msg}"),
            ServiceError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::BadRequest(_)
            | ServiceError::RowNotFound(_)
            | ServiceError::Snapshot(_) => None,
            ServiceError::Core(e) => Some(e),
        }
    }
}

impl From<coverage_core::CoverageError> for ServiceError {
    fn from(e: coverage_core::CoverageError) -> Self {
        ServiceError::Core(e)
    }
}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, ServiceError>;
