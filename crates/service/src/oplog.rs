//! The durable append-only op log.
//!
//! Every mutating operation the server applies (insert, delete, grow) is
//! recorded as one NDJSON line carrying a format version and a dense
//! sequence number:
//!
//! ```text
//! {"v":1,"seq":12,"op":"insert","rows":[["f","black"]]}
//! {"v":1,"seq":13,"op":"delete","rows":[["m","white"]]}
//! {"v":1,"seq":14,"op":"grow","attr":"race","value":"hispanic"}
//! ```
//!
//! Rows are stored as the *raw string values* the client sent, never as
//! dictionary codes: replay runs through the ordinary encode path, so a
//! replayed log is deterministic against any engine built from the same
//! snapshot — including dictionary growth, because grow operations are
//! logged in order with everything else.
//!
//! Recovery contract: the log is written append-only with each entry
//! flushed before the request is acknowledged, and the final line of a
//! crashed process may be torn (partially written). [`OpLog::open`] and
//! [`read_entries_from`] stop cleanly at the last *complete* entry; `open`
//! additionally truncates a torn tail so subsequent appends start on a
//! fresh line. A torn or corrupt line in the *middle* of the log (complete
//! entries follow it) is refused — that is disk corruption, not a crash.
//!
//! Versioning policy mirrors snapshots: every entry carries `"v"`; this
//! build writes [`OPLOG_VERSION`] and refuses entries from a *newer*
//! version (old software must not half-understand a new format). Within a
//! version, unknown fields are ignored, so additive evolution is possible
//! without a bump.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::protocol::{write_json_string, Json};

/// The entry format version this build writes. Entries with a larger `"v"`
/// are refused on read.
pub const OPLOG_VERSION: u64 = 1;

/// The largest number of entries a single `replicate` response carries;
/// followers page through the log with repeated requests.
pub const REPLICATE_BATCH_LIMIT: usize = 512;

/// When to `fsync` the log (`--oplog-sync`).
///
/// * `Always` — fsync after every entry before the request is acknowledged;
///   an acknowledged write survives power loss.
/// * `Batch` — write+flush per entry, fsync once per event-loop tick; an
///   acknowledged write survives process death but a power cut can lose the
///   last tick's worth.
/// * `Off` — never fsync explicitly; the OS decides. Fastest, weakest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync every appended entry.
    Always,
    /// fsync once per event-loop tick (the default).
    #[default]
    Batch,
    /// Never fsync explicitly.
    Off,
}

impl SyncPolicy {
    /// Parses the `--oplog-sync` flag value.
    pub fn parse(text: &str) -> Option<SyncPolicy> {
        match text {
            "always" => Some(SyncPolicy::Always),
            "batch" => Some(SyncPolicy::Batch),
            "off" => Some(SyncPolicy::Off),
            _ => None,
        }
    }

    /// The flag spelling of the policy.
    pub fn as_str(self) -> &'static str {
        match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Batch => "batch",
            SyncPolicy::Off => "off",
        }
    }
}

/// One logical mutation, with values kept raw (pre-dictionary) so replay
/// goes through the ordinary encode path.
#[derive(Debug, Clone, PartialEq)]
pub enum LoggedOp {
    /// Rows ingested by one `insert` request.
    Insert {
        /// Outer = rows, inner = per-attribute raw values.
        rows: Vec<Vec<String>>,
    },
    /// Rows removed by one `delete` request.
    Delete {
        /// Outer = rows, inner = per-attribute raw values.
        rows: Vec<Vec<String>>,
    },
    /// One dictionary growth (`grow` op, or `--grow-schema` auto-growth is
    /// implied by the raw values of logged inserts instead).
    Grow {
        /// The attribute name as the client sent it.
        attribute: String,
        /// The new value's name.
        value: String,
    },
}

/// A sequenced log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// The dense, monotonically increasing sequence number (first entry
    /// ever written is 1).
    pub seq: u64,
    /// The recorded mutation.
    pub op: LoggedOp,
}

fn write_rows(out: &mut String, rows: &[Vec<String>]) {
    out.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, value) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_json_string(out, value);
        }
        out.push(']');
    }
    out.push(']');
}

impl LogEntry {
    /// Serializes the entry as its wire/disk line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = format!("{{\"v\":{OPLOG_VERSION},\"seq\":{}", self.seq);
        match &self.op {
            LoggedOp::Insert { rows } => {
                out.push_str(",\"op\":\"insert\",\"rows\":");
                write_rows(&mut out, rows);
            }
            LoggedOp::Delete { rows } => {
                out.push_str(",\"op\":\"delete\",\"rows\":");
                write_rows(&mut out, rows);
            }
            LoggedOp::Grow { attribute, value } => {
                out.push_str(",\"op\":\"grow\",\"attr\":");
                write_json_string(&mut out, attribute);
                out.push_str(",\"value\":");
                write_json_string(&mut out, value);
            }
        }
        out.push('}');
        out
    }

    /// Parses one complete log line. Errors are strings because callers
    /// decide whether a failure is a tolerated torn tail or corruption.
    pub fn parse(line: &str) -> Result<LogEntry, String> {
        LogEntry::from_json(&Json::parse(line)?)
    }

    /// Decodes an already-parsed entry object (a `replicate` response
    /// embeds entries inside its own JSON document).
    pub fn from_json(doc: &Json) -> Result<LogEntry, String> {
        let version = doc
            .get("v")
            .and_then(Json::as_u64)
            .ok_or("entry missing integer field `v`")?;
        if version > OPLOG_VERSION {
            return Err(format!(
                "entry version {version} is newer than this build supports ({OPLOG_VERSION})"
            ));
        }
        let seq = doc
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or("entry missing integer field `seq`")?;
        if seq == 0 {
            return Err("entry seq must be positive".into());
        }
        let rows_of = |doc: &Json| -> Result<Vec<Vec<String>>, String> {
            doc.get("rows")
                .and_then(Json::as_array)
                .ok_or("entry missing array field `rows`")?
                .iter()
                .map(|row| {
                    row.as_array()
                        .ok_or_else(|| "row must be an array".to_string())?
                        .iter()
                        .map(|v| {
                            v.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "row values must be strings".to_string())
                        })
                        .collect()
                })
                .collect()
        };
        let op = match doc.get("op").and_then(Json::as_str) {
            Some("insert") => LoggedOp::Insert {
                rows: rows_of(doc)?,
            },
            Some("delete") => LoggedOp::Delete {
                rows: rows_of(doc)?,
            },
            Some("grow") => LoggedOp::Grow {
                attribute: doc
                    .get("attr")
                    .and_then(Json::as_str)
                    .ok_or("grow entry missing string field `attr`")?
                    .to_string(),
                value: doc
                    .get("value")
                    .and_then(Json::as_str)
                    .ok_or("grow entry missing string field `value`")?
                    .to_string(),
            },
            other => return Err(format!("unknown entry op {other:?}")),
        };
        Ok(LogEntry { seq, op })
    }
}

/// Result of scanning a log file: the complete entries plus the byte
/// offset just past the last complete line (a torn tail starts there).
struct Scan {
    entries: Vec<LogEntry>,
    complete_bytes: u64,
}

/// Scans NDJSON log text, stopping cleanly at the last complete entry. A
/// final line that is unterminated or fails to parse is tolerated (crash
/// tear); a bad line *followed by complete entries* is corruption.
fn scan_log(text: &str) -> io::Result<Scan> {
    let mut entries: Vec<LogEntry> = Vec::new();
    let mut complete_bytes = 0u64;
    let mut torn: Option<String> = None;
    let mut offset = 0usize;
    for piece in text.split_inclusive('\n') {
        let start = offset;
        offset += piece.len();
        let terminated = piece.ends_with('\n');
        let line = piece.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            if terminated {
                complete_bytes = offset as u64;
            }
            continue;
        }
        if torn.is_some() {
            // Entries after a bad line: the tear was not at the tail.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "op log corrupt at byte {start}: {}",
                    torn.take().unwrap_or_default()
                ),
            ));
        }
        match LogEntry::parse(line) {
            Ok(entry) if !terminated => {
                // A fully parseable final line without its newline: the
                // newline write itself tore. Treat it as incomplete.
                let _ = entry;
                torn = Some("final line missing newline".into());
            }
            Ok(entry) => {
                if let Some(last) = entries.last() {
                    if entry.seq != last.seq + 1 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "op log seq jumps from {} to {} at byte {start}",
                                last.seq, entry.seq
                            ),
                        ));
                    }
                }
                entries.push(entry);
                complete_bytes = offset as u64;
            }
            Err(e) if !terminated => torn = Some(e),
            Err(e) => torn = Some(format!("{e} (line is newline-terminated)")),
        }
    }
    // A trailing `torn` here is the tolerated crash tear — but a *newer
    // version* entry must refuse, terminated or not: it is not a tear.
    if let Some(reason) = &torn {
        if reason.contains("newer than this build") {
            return Err(io::Error::new(io::ErrorKind::InvalidData, reason.clone()));
        }
    }
    Ok(Scan {
        entries,
        complete_bytes,
    })
}

/// Reads the complete entries of a log file with `seq >= from_seq`,
/// tolerating a torn final line. Used by followers tailing a shared file
/// and by recovery replay.
pub fn read_entries_from(path: &Path, from_seq: u64) -> io::Result<Vec<LogEntry>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut scan = scan_log(&text)?;
    scan.entries.retain(|e| e.seq >= from_seq);
    Ok(scan.entries)
}

/// The writable append-only op log a leader owns.
///
/// All complete entries since the last snapshot-anchored truncation are
/// kept in memory (they are also what `replicate` serves), so the resident
/// size is bounded by how often the operator snapshots.
#[derive(Debug)]
pub struct OpLog {
    path: PathBuf,
    file: File,
    sync: SyncPolicy,
    dirty: bool,
    entries: Vec<LogEntry>,
    next_seq: u64,
    appends: u64,
    fsyncs: u64,
}

impl OpLog {
    /// Opens (or creates) the log at `path`, scanning existing entries and
    /// truncating a torn final line so appends start clean.
    pub fn open(path: &Path, sync: SyncPolicy) -> io::Result<OpLog> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let scan = scan_log(&text)?;
        if scan.complete_bytes < text.len() as u64 {
            file.set_len(scan.complete_bytes)?;
        }
        file.seek(SeekFrom::Start(scan.complete_bytes))?;
        let next_seq = scan.entries.last().map_or(1, |e| e.seq + 1);
        Ok(OpLog {
            path: path.to_path_buf(),
            file,
            sync,
            dirty: false,
            entries: scan.entries,
            next_seq,
            appends: 0,
            fsyncs: 0,
        })
    }

    /// Opens a log whose sequence numbering continues after a snapshot
    /// anchor: an *empty or absent* file starts at `anchor + 1` instead of
    /// 1 (a non-empty file's own numbering wins — it must already be
    /// contiguous with the anchor, which [`OpLog::first_seq`] lets callers
    /// verify).
    pub fn open_anchored(path: &Path, sync: SyncPolicy, anchor: u64) -> io::Result<OpLog> {
        let mut log = OpLog::open(path, sync)?;
        if log.entries.is_empty() && log.next_seq <= anchor {
            log.next_seq = anchor + 1;
        }
        Ok(log)
    }

    /// Appends one mutation, returning its sequence number. The entry is
    /// written and flushed before returning; under [`SyncPolicy::Always`]
    /// it is also fsynced.
    pub fn append(&mut self, op: LoggedOp) -> io::Result<u64> {
        let entry = LogEntry {
            seq: self.next_seq,
            op,
        };
        let mut line = entry.to_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.appends += 1;
        match self.sync {
            SyncPolicy::Always => {
                self.file.sync_data()?;
                self.fsyncs += 1;
            }
            SyncPolicy::Batch => self.dirty = true,
            SyncPolicy::Off => {}
        }
        self.next_seq += 1;
        self.entries.push(entry);
        Ok(self.next_seq - 1)
    }

    /// Fsyncs pending appends if the policy is [`SyncPolicy::Batch`] and
    /// anything was written since the last sync. The event loop calls this
    /// once per tick.
    pub fn sync_batch(&mut self) -> io::Result<()> {
        if self.dirty && self.sync == SyncPolicy::Batch {
            self.file.sync_data()?;
            self.fsyncs += 1;
            self.dirty = false;
        }
        Ok(())
    }

    /// The sequence number of the last appended entry (0 if none ever).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// The sequence number of the oldest *retained* entry; equals
    /// `last_seq() + 1` when the log holds no entries (all truncated).
    pub fn first_seq(&self) -> u64 {
        self.entries.first().map_or(self.next_seq, |e| e.seq)
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log retains no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total appends since open (for stats).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Total explicit fsyncs since open (for stats).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// The configured sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Retained entries with `seq >= from`, capped at `max`. `Err` carries
    /// the oldest available seq when `from` predates the retained window
    /// (the follower must restart from a fresh snapshot).
    pub fn entries_from(&self, from: u64, max: usize) -> Result<&[LogEntry], u64> {
        let first = self.first_seq();
        if from < first {
            return Err(first);
        }
        let skip = (from - first) as usize;
        let upper = self.entries.len().min(skip.saturating_add(max));
        Ok(&self.entries[skip.min(self.entries.len())..upper])
    }

    /// Drops every entry with `seq <= through` (a snapshot at that anchor
    /// makes them redundant), rewriting the file atomically via tmp+rename
    /// and reopening the append handle.
    pub fn truncate_through(&mut self, through: u64) -> io::Result<()> {
        if self.entries.first().is_none_or(|e| e.seq > through) {
            return Ok(());
        }
        let keep = self.entries.iter().position(|e| e.seq > through);
        let retained: Vec<LogEntry> = match keep {
            Some(i) => self.entries.split_off(i),
            None => Vec::new(),
        };
        self.entries = retained;
        let mut tmp_name = self
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "oplog".into());
        tmp_name.push_str(".tmp");
        let tmp = self.path.with_file_name(tmp_name);
        {
            let mut out = File::create(&tmp)?;
            let mut text = String::new();
            for entry in &self.entries {
                text.push_str(&entry.to_line());
                text.push('\n');
            }
            out.write_all(text.as_bytes())?;
            out.sync_data()?;
        }
        fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "mithra-oplog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_file(&p);
        p
    }

    fn sample_ops() -> Vec<LoggedOp> {
        vec![
            LoggedOp::Insert {
                rows: vec![vec!["f".into(), "black".into()]],
            },
            LoggedOp::Delete {
                rows: vec![
                    vec!["m".into(), "white".into()],
                    vec!["f".into(), "black".into()],
                ],
            },
            LoggedOp::Grow {
                attribute: "race".into(),
                value: "va\"l".into(),
            },
        ]
    }

    #[test]
    fn entries_round_trip_through_lines() {
        for (i, op) in sample_ops().into_iter().enumerate() {
            let entry = LogEntry {
                seq: i as u64 + 1,
                op,
            };
            let line = entry.to_line();
            assert_eq!(LogEntry::parse(&line).unwrap(), entry, "line `{line}`");
        }
    }

    #[test]
    fn append_reopen_replay() {
        let path = temp_path("reopen");
        let mut log = OpLog::open(&path, SyncPolicy::Off).unwrap();
        for op in sample_ops() {
            log.append(op).unwrap();
        }
        assert_eq!(log.last_seq(), 3);
        drop(log);
        let log = OpLog::open(&path, SyncPolicy::Off).unwrap();
        assert_eq!(log.last_seq(), 3);
        assert_eq!(log.first_seq(), 1);
        assert_eq!(log.len(), 3);
        let tail = read_entries_from(&path, 2).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_dropped_cleanly() {
        let path = temp_path("torn");
        let mut log = OpLog::open(&path, SyncPolicy::Always).unwrap();
        for op in sample_ops() {
            log.append(op).unwrap();
        }
        drop(log);
        // Simulate a crash mid-append: append half an entry, no newline.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"v\":1,\"seq\":4,\"op\":\"insert\",\"rows\":[[\"f\"");
        fs::write(&path, &text).unwrap();
        assert_eq!(read_entries_from(&path, 1).unwrap().len(), 3);
        let mut log = OpLog::open(&path, SyncPolicy::Off).unwrap();
        assert_eq!(log.last_seq(), 3);
        // The tear was truncated, so the next append lands on its own line.
        log.append(LoggedOp::Grow {
            attribute: "a".into(),
            value: "b".into(),
        })
        .unwrap();
        drop(log);
        let entries = read_entries_from(&path, 1).unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[3].seq, 4);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn complete_final_line_missing_newline_is_also_a_tear() {
        let path = temp_path("no-newline");
        fs::write(
            &path,
            "{\"v\":1,\"seq\":1,\"op\":\"grow\",\"attr\":\"a\",\"value\":\"b\"}\n{\"v\":1,\"seq\":2,\"op\":\"grow\",\"attr\":\"a\",\"value\":\"c\"}",
        )
        .unwrap();
        let entries = read_entries_from(&path, 1).unwrap();
        assert_eq!(entries.len(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corruption_before_the_tail_is_refused() {
        let path = temp_path("corrupt");
        fs::write(
            &path,
            "garbage line\n{\"v\":1,\"seq\":1,\"op\":\"grow\",\"attr\":\"a\",\"value\":\"b\"}\n",
        )
        .unwrap();
        let err = read_entries_from(&path, 1).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        assert!(OpLog::open(&path, SyncPolicy::Off).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn newer_version_entries_are_refused() {
        let path = temp_path("newer");
        fs::write(
            &path,
            format!(
                "{{\"v\":{},\"seq\":1,\"op\":\"grow\",\"attr\":\"a\",\"value\":\"b\"}}\n",
                OPLOG_VERSION + 1
            ),
        )
        .unwrap();
        let err = read_entries_from(&path, 1).unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn seq_gaps_are_refused() {
        let path = temp_path("gap");
        fs::write(
            &path,
            "{\"v\":1,\"seq\":1,\"op\":\"grow\",\"attr\":\"a\",\"value\":\"b\"}\n{\"v\":1,\"seq\":3,\"op\":\"grow\",\"attr\":\"a\",\"value\":\"c\"}\n",
        )
        .unwrap();
        assert!(read_entries_from(&path, 1).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncate_through_keeps_the_tail_and_numbering() {
        let path = temp_path("truncate");
        let mut log = OpLog::open(&path, SyncPolicy::Batch).unwrap();
        for op in sample_ops() {
            log.append(op).unwrap();
        }
        log.sync_batch().unwrap();
        log.truncate_through(2).unwrap();
        assert_eq!(log.first_seq(), 3);
        assert_eq!(log.last_seq(), 3);
        assert_eq!(log.len(), 1);
        // Appends continue the numbering after truncation.
        let seq = log
            .append(LoggedOp::Grow {
                attribute: "a".into(),
                value: "z".into(),
            })
            .unwrap();
        assert_eq!(seq, 4);
        drop(log);
        let log = OpLog::open(&path, SyncPolicy::Batch).unwrap();
        assert_eq!(log.first_seq(), 3);
        assert_eq!(log.last_seq(), 4);
        // Truncating everything leaves an empty log that still numbers on.
        let mut log = log;
        log.truncate_through(100).unwrap();
        assert!(log.is_empty());
        assert_eq!(log.first_seq(), 5);
        assert_eq!(log.append(sample_ops().remove(0)).unwrap(), 5);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn open_anchored_continues_after_a_snapshot() {
        let path = temp_path("anchored");
        let mut log = OpLog::open_anchored(&path, SyncPolicy::Off, 41).unwrap();
        assert_eq!(log.last_seq(), 41);
        assert_eq!(log.append(sample_ops().remove(0)).unwrap(), 42);
        drop(log);
        // A non-empty file keeps its own numbering.
        let log = OpLog::open_anchored(&path, SyncPolicy::Off, 7).unwrap();
        assert_eq!(log.first_seq(), 42);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn entries_from_pages_and_detects_truncated_history() {
        let path = temp_path("pages");
        let mut log = OpLog::open(&path, SyncPolicy::Off).unwrap();
        for i in 0..10u32 {
            log.append(LoggedOp::Grow {
                attribute: "a".into(),
                value: format!("v{i}"),
            })
            .unwrap();
        }
        let page = log.entries_from(4, 3).unwrap();
        assert_eq!(
            page.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        assert_eq!(log.entries_from(11, 3).unwrap().len(), 0);
        log.truncate_through(5).unwrap();
        assert_eq!(log.entries_from(3, 10), Err(6));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn sync_policy_parses() {
        assert_eq!(SyncPolicy::parse("always"), Some(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("batch"), Some(SyncPolicy::Batch));
        assert_eq!(SyncPolicy::parse("off"), Some(SyncPolicy::Off));
        assert_eq!(SyncPolicy::parse("sometimes"), None);
        assert_eq!(SyncPolicy::Always.as_str(), "always");
    }
}
