//! The newline-delimited JSON request/response protocol.
//!
//! One request per line, one response line per request, always an object.
//! Every request may carry an optional `"id"` (string or number) that is
//! echoed verbatim in its response, so pipelined clients can match
//! responses to requests:
//!
//! ```text
//! → {"op":"insert","id":7,"row":["f","black"]}
//! ← {"ok":true,"id":7,"op":"insert","inserted":1,"rows":6}
//! → {"op":"mups","limit":10}
//! ← {"ok":true,"op":"mups","count":2,"tau":1,"mups":["1XX","X10"],"decoded":["sex=f","race=black, age=young"]}
//! ```
//!
//! Malformed lines never kill the connection — they produce a uniform
//! `{"ok":false,"id":…,"code":"<machine-code>","error":"<human text>"}`
//! response, where `code` comes from the enumerated [`ErrorCode`] table
//! (stable contract for programs) and `error` is free-form prose (for
//! humans; may change between releases). The JSON reader/writer is
//! hand-rolled (vendoring policy: no new external dependencies) and covers
//! the full value grammar: objects, arrays, strings with escapes and
//! `\uXXXX` (including surrogate pairs), numbers, booleans, null.

use std::fmt::Write as _;

use coverage_core::CoverageError;
use coverage_data::DataError;

use crate::ServiceError;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like browsers do).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, matching common parsers).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            text: input,
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a key in an object (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    ///
    /// The upper bound is strict: `u64::MAX as f64` rounds *up* to 2^64, so
    /// a `<=` comparison would admit `18446744073709551616` (and the f64
    /// rounding of `u64::MAX` itself) and silently saturate the cast to
    /// `u64::MAX`; `<` rejects everything from 2^64 up instead.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Number(n) if n >= 0.0 && n.fract() == 0.0 && n < u64::MAX as f64 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Nesting bound for the recursive-descent parser: requests are flat
/// (depth ≤ 3), but a hostile line of `[[[…` must produce an error
/// response, not a stack overflow that kills the whole server.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    /// The input as a `&str`: already-valid UTF-8, so multi-byte scalars in
    /// strings decode in O(1) instead of re-validating the suffix.
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid low surrogate".into());
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err("lone low surrogate".into());
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or("invalid unicode escape")?);
                        }
                        other => {
                            return Err(format!("invalid escape `\\{}`", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` only ever advances by
                    // whole scalars, so this O(1) str slice cannot split a
                    // character (and cannot re-validate the whole suffix,
                    // which would make long strings quadratic to parse).
                    let ch = self.text[self.pos..].chars().next().expect("non-empty");
                    if (ch as u32) < 0x20 {
                        return Err("unescaped control character in string".into());
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let code = u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(code)
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

/// Appends `s` to `out` as a quoted JSON string with all required escapes.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The enumerated machine-readable error codes every `{"ok":false}`
/// response carries in its `"code"` field. Programs should branch on these
/// — the accompanying `"error"` text is for humans and may change wording
/// between releases; the codes are a stable contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not a valid JSON object, or lacks a usable `"op"`.
    Parse,
    /// The request line exceeded the per-line byte cap and was discarded.
    LineTooLong,
    /// The `"op"` value is not a known operation.
    UnknownOp,
    /// A field is missing, of the wrong type, or otherwise malformed.
    BadRequest,
    /// A row or pattern has the wrong number of attributes.
    ArityMismatch,
    /// A row value does not resolve against its attribute's dictionary.
    UnknownValue,
    /// A named attribute is not part of the schema.
    UnknownAttribute,
    /// A `grow` value already resolves on its attribute.
    DuplicateValue,
    /// A `coverage` pattern string does not parse.
    BadPattern,
    /// A `delete` names more copies of a row than the dataset holds.
    RowNotFound,
    /// An `enhance` plan cannot hit every remaining pattern.
    Unhittable,
    /// `snapshot`/`restore` was requested but no path is configured.
    NoSnapshot,
    /// A snapshot could not be written, read, or understood.
    SnapshotIo,
    /// A `restore` would change the serving threshold mid-flight.
    ThresholdMismatch,
    /// The server shed this request under admission control; retry later.
    Overloaded,
    /// A mutation was sent to a read-only follower replica.
    ReadOnly,
    /// The request named a dataset this server does not host.
    UnknownDataset,
    /// The handler failed internally (e.g. a contained panic).
    Internal,
}

impl ErrorCode {
    /// The stable wire form of the code (snake_case).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::LineTooLong => "line_too_long",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ArityMismatch => "arity_mismatch",
            ErrorCode::UnknownValue => "unknown_value",
            ErrorCode::UnknownAttribute => "unknown_attribute",
            ErrorCode::DuplicateValue => "duplicate_value",
            ErrorCode::BadPattern => "bad_pattern",
            ErrorCode::RowNotFound => "row_not_found",
            ErrorCode::Unhittable => "unhittable",
            ErrorCode::NoSnapshot => "no_snapshot",
            ErrorCode::SnapshotIo => "snapshot_io",
            ErrorCode::ThresholdMismatch => "threshold_mismatch",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ReadOnly => "read_only",
            ErrorCode::UnknownDataset => "unknown_dataset",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A rejected request: a machine [`ErrorCode`] plus human-readable detail.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// The stable machine code.
    pub code: ErrorCode,
    /// Free-form human-readable detail.
    pub message: String,
}

impl ServeError {
    /// Builds an error from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ServeError {
            code,
            message: message.into(),
        }
    }

    /// Classifies a dataset-layer error into its protocol code.
    pub fn from_data(e: DataError) -> Self {
        let code = match &e {
            DataError::RowArity { .. } => ErrorCode::ArityMismatch,
            DataError::UnknownValue { .. } | DataError::ValueOutOfRange { .. } => {
                ErrorCode::UnknownValue
            }
            DataError::UnknownAttribute(_) => ErrorCode::UnknownAttribute,
            DataError::DuplicateValue { .. } => ErrorCode::DuplicateValue,
            DataError::RowNotFound => ErrorCode::RowNotFound,
            DataError::Io(_) => ErrorCode::SnapshotIo,
            _ => ErrorCode::BadRequest,
        };
        ServeError::new(code, e.to_string())
    }

    /// Classifies a service-layer error into its protocol code.
    pub fn from_service(e: ServiceError) -> Self {
        let code = match &e {
            ServiceError::BadRequest(_) => ErrorCode::BadRequest,
            ServiceError::RowNotFound(_) => ErrorCode::RowNotFound,
            ServiceError::Snapshot(_) => ErrorCode::SnapshotIo,
            ServiceError::Core(core) => match core {
                CoverageError::ArityMismatch { .. } => ErrorCode::ArityMismatch,
                CoverageError::Unhittable { .. } => ErrorCode::Unhittable,
                CoverageError::Data(d) => return ServeError::from_data_ref(d, e.to_string()),
                _ => ErrorCode::BadRequest,
            },
        };
        ServeError::new(code, e.to_string())
    }

    fn from_data_ref(e: &DataError, message: String) -> Self {
        let code = match e {
            DataError::RowArity { .. } => ErrorCode::ArityMismatch,
            DataError::UnknownValue { .. } | DataError::ValueOutOfRange { .. } => {
                ErrorCode::UnknownValue
            }
            DataError::UnknownAttribute(_) => ErrorCode::UnknownAttribute,
            DataError::DuplicateValue { .. } => ErrorCode::DuplicateValue,
            DataError::RowNotFound => ErrorCode::RowNotFound,
            DataError::Io(_) => ErrorCode::SnapshotIo,
            _ => ErrorCode::BadRequest,
        };
        ServeError::new(code, message)
    }
}

/// A request's optional client-chosen correlation id, echoed verbatim in
/// the response. Strings and numbers are accepted (matching what JSON-RPC
/// clients conventionally send).
#[derive(Debug, Clone, PartialEq)]
pub enum RequestId {
    /// A string id.
    Str(String),
    /// A numeric id (JSON numbers are f64; integers echo without a dot).
    Num(f64),
}

/// Appends a request id in its JSON wire form.
pub fn write_request_id(out: &mut String, id: &RequestId) {
    match id {
        RequestId::Str(s) => write_json_string(out, s),
        RequestId::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
    }
}

/// Starts a success response: `{"ok":true` plus the echoed id when the
/// request carried one. The caller appends `,"op":…` and the body.
pub fn ok_head(out: &mut String, id: Option<&RequestId>) {
    out.push_str("{\"ok\":true");
    if let Some(id) = id {
        out.push_str(",\"id\":");
        write_request_id(out, id);
    }
}

/// A validated protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Ingest one or more tuples (`"row"` or `"rows"`), values given as
    /// attribute value names (or numeric codes).
    Insert {
        /// The tuples, outer = rows, inner = per-attribute raw values.
        rows: Vec<Vec<String>>,
    },
    /// Remove one or more tuples (`"row"` or `"rows"`, same shapes as
    /// `insert`); every requested copy must be present or the batch is
    /// rejected atomically.
    Delete {
        /// The tuples to remove, outer = rows, inner = raw values.
        rows: Vec<Vec<String>>,
    },
    /// Register a brand-new value on an attribute's dictionary, growing its
    /// cardinality by one, without touching any row.
    Grow {
        /// Name of the attribute to grow.
        attribute: String,
        /// The new value's name.
        value: String,
    },
    /// Write the engine state to the server's configured snapshot path.
    Snapshot,
    /// Replace the engine with the state in the configured snapshot path.
    Restore,
    /// List the current MUPs, optionally truncated.
    Mups {
        /// Maximum number of patterns to return.
        limit: Option<usize>,
    },
    /// Query `cov(P)` for a pattern in compact notation (`1XX`).
    Coverage {
        /// The pattern text.
        pattern: String,
    },
    /// Plan coverage enhancement for level λ.
    Enhance {
        /// The target level λ.
        lambda: usize,
    },
    /// Engine statistics.
    Stats,
    /// Fetch a batch of op-log entries starting at a sequence number
    /// (leader side of follower replication).
    Replicate {
        /// The first sequence number wanted (entries with `seq >= from`).
        from_seq: u64,
    },
}

/// A parsed request line: the optional client id plus the validated op.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The client's correlation id, echoed in the response.
    pub id: Option<RequestId>,
    /// The dataset this request addresses in multi-tenant mode (absent =
    /// the default dataset, byte-compatible with single-dataset clients).
    pub dataset: Option<String>,
    /// The validated operation.
    pub request: Request,
}

/// A rejected request line: the error plus the id when one was recoverable
/// (the line parsed as an object but the op was invalid).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseFailure {
    /// The id, when the line got far enough to yield one.
    pub id: Option<RequestId>,
    /// What was wrong.
    pub error: ServeError,
}

/// Converts a JSON value into one raw attribute value.
fn raw_value(v: &Json) -> Result<String, ServeError> {
    match v {
        Json::String(s) => Ok(s.clone()),
        Json::Number(n) if n.fract() == 0.0 => Ok(format!("{}", *n as i64)),
        other => Err(ServeError::new(
            ErrorCode::BadRequest,
            format!("row values must be strings or integer codes, got {other:?}"),
        )),
    }
}

/// One tuple: an array of raw attribute values. `what` names the offending
/// field in errors (`row`, or an element of `rows`).
fn parse_one_row(value: &Json, what: &str) -> Result<Vec<String>, ServeError> {
    let items = value.as_array().ok_or_else(|| {
        ServeError::new(
            ErrorCode::BadRequest,
            format!("{what} must be an array of values"),
        )
    })?;
    items.iter().map(raw_value).collect()
}

/// The `"row"` / `"rows"` payload shared by `insert` and `delete`. `op`
/// names the operation in error messages.
fn parse_rows(doc: &Json, op: &str) -> Result<Vec<Vec<String>>, ServeError> {
    let bad = |m: String| ServeError::new(ErrorCode::BadRequest, m);
    let rows = match (doc.get("rows"), doc.get("row")) {
        (Some(rows), _) => rows
            .as_array()
            .ok_or_else(|| bad("`rows` must be an array of rows".into()))?
            .iter()
            .map(|row| parse_one_row(row, "each row in `rows`"))
            .collect::<Result<Vec<_>, _>>()?,
        (None, Some(row)) => vec![parse_one_row(row, "`row`")?],
        (None, None) => return Err(bad(format!("{op} needs `row` or `rows`"))),
    };
    if rows.is_empty() {
        return Err(bad(format!("{op} needs at least one row")));
    }
    Ok(rows)
}

/// Parses one request line into its id + validated op. On failure the id is
/// still returned when the line parsed as JSON (so the error response can
/// echo it back to a pipelined client).
pub fn parse_request(line: &str) -> Result<Envelope, ParseFailure> {
    let fail_no_id = |code: ErrorCode, message: String| ParseFailure {
        id: None,
        error: ServeError::new(code, message),
    };
    let doc = Json::parse(line).map_err(|message| fail_no_id(ErrorCode::Parse, message))?;
    if !matches!(doc, Json::Object(_)) {
        return Err(fail_no_id(
            ErrorCode::Parse,
            "request must be a JSON object".into(),
        ));
    }
    let id = match doc.get("id") {
        None | Some(Json::Null) => None,
        Some(Json::String(s)) => Some(RequestId::Str(s.clone())),
        Some(Json::Number(n)) => Some(RequestId::Num(*n)),
        Some(_) => {
            return Err(fail_no_id(
                ErrorCode::BadRequest,
                "`id` must be a string or number".into(),
            ))
        }
    };
    let fail = |code: ErrorCode, message: String| ParseFailure {
        id: id.clone(),
        error: ServeError::new(code, message),
    };
    let bad = |message: &str| fail(ErrorCode::BadRequest, message.into());
    let dataset = match doc.get("dataset") {
        None | Some(Json::Null) => None,
        Some(Json::String(s)) => Some(s.clone()),
        Some(_) => return Err(bad("`dataset` must be a string")),
    };
    let op = match doc.get("op").and_then(Json::as_str) {
        Some(op) => op,
        None => return Err(fail(ErrorCode::Parse, "missing string field `op`".into())),
    };
    let request = match op {
        "insert" => Request::Insert {
            rows: parse_rows(&doc, "insert").map_err(|e| fail(e.code, e.message))?,
        },
        "delete" => Request::Delete {
            rows: parse_rows(&doc, "delete").map_err(|e| fail(e.code, e.message))?,
        },
        "grow" => {
            let attribute = doc
                .get("attr")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("grow needs a string field `attr` (the attribute name)"))?;
            let value = doc
                .get("value")
                .ok_or_else(|| bad("grow needs a field `value` (the new value's name)"))?;
            Request::Grow {
                attribute: attribute.to_string(),
                value: raw_value(value).map_err(|e| fail(e.code, e.message))?,
            }
        }
        "snapshot" => Request::Snapshot,
        "restore" => Request::Restore,
        "mups" => {
            let limit = match doc.get("limit") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| bad("`limit` must be a non-negative integer"))?
                        as usize,
                ),
            };
            Request::Mups { limit }
        }
        "coverage" => {
            let pattern = doc
                .get("pattern")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("coverage needs a string field `pattern`"))?;
            Request::Coverage {
                pattern: pattern.to_string(),
            }
        }
        "enhance" => {
            let lambda = doc
                .get("lambda")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("enhance needs a non-negative integer field `lambda`"))?;
            Request::Enhance {
                lambda: lambda as usize,
            }
        }
        "stats" => Request::Stats,
        "replicate" => {
            let from_seq = doc
                .get("from")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("replicate needs a non-negative integer field `from`"))?;
            Request::Replicate { from_seq }
        }
        other => {
            return Err(fail(
                ErrorCode::UnknownOp,
                format!(
                    "unknown op `{other}` (expected insert|delete|grow|mups|coverage|enhance|stats|snapshot|restore|replicate)"
                ),
            ))
        }
    };
    Ok(Envelope {
        id,
        dataset,
        request,
    })
}

/// Builds the uniform `{"ok":false,"id":…,"code":…,"error":…}` response for
/// a rejected request (the `id` is omitted when the request had none).
pub fn error_response(id: Option<&RequestId>, error: &ServeError) -> String {
    let mut out = String::from("{\"ok\":false");
    if let Some(id) = id {
        out.push_str(",\"id\":");
        write_request_id(&mut out, id);
    }
    out.push_str(",\"code\":\"");
    out.push_str(error.code.as_str());
    out.push_str("\",\"error\":");
    write_json_string(&mut out, &error.message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unwraps the op, discarding the id (most shape tests don't send one).
    fn parse_op(line: &str) -> Request {
        parse_request(line).unwrap().request
    }

    #[test]
    fn parses_all_ops() {
        assert_eq!(
            parse_op(r#"{"op":"insert","row":["f","black"]}"#),
            Request::Insert {
                rows: vec![vec!["f".into(), "black".into()]]
            }
        );
        assert_eq!(
            parse_op(r#"{"op":"insert","rows":[["a","b"],["c","d"]]}"#),
            Request::Insert {
                rows: vec![vec!["a".into(), "b".into()], vec!["c".into(), "d".into()]]
            }
        );
        assert_eq!(
            parse_op(r#"{"op":"insert","row":[1,0]}"#),
            Request::Insert {
                rows: vec![vec!["1".into(), "0".into()]]
            }
        );
        assert_eq!(
            parse_op(r#"{"op":"delete","row":["f","black"]}"#),
            Request::Delete {
                rows: vec![vec!["f".into(), "black".into()]]
            }
        );
        assert_eq!(
            parse_op(r#"{"op":"delete","rows":[["a","b"],["c","d"]]}"#),
            Request::Delete {
                rows: vec![vec!["a".into(), "b".into()], vec!["c".into(), "d".into()]]
            }
        );
        assert_eq!(
            parse_op(r#"{"op":"grow","attr":"race","value":"hispanic"}"#),
            Request::Grow {
                attribute: "race".into(),
                value: "hispanic".into()
            }
        );
        // Numeric values stringify, mirroring row cells.
        assert_eq!(
            parse_op(r#"{"op":"grow","attr":"age","value":7}"#),
            Request::Grow {
                attribute: "age".into(),
                value: "7".into()
            }
        );
        assert_eq!(parse_op(r#"{"op":"snapshot"}"#), Request::Snapshot);
        assert_eq!(parse_op(r#"{"op":"restore"}"#), Request::Restore);
        assert_eq!(parse_op(r#"{"op":"mups"}"#), Request::Mups { limit: None });
        assert_eq!(
            parse_op(r#"{"op":"mups","limit":5}"#),
            Request::Mups { limit: Some(5) }
        );
        assert_eq!(
            parse_op(r#"{"op":"coverage","pattern":"1XX"}"#),
            Request::Coverage {
                pattern: "1XX".into()
            }
        );
        assert_eq!(
            parse_op(r#"{"op":"enhance","lambda":2}"#),
            Request::Enhance { lambda: 2 }
        );
        assert_eq!(parse_op(r#"{"op":"stats"}"#), Request::Stats);
        assert_eq!(
            parse_op(r#"{"op":"replicate","from":17}"#),
            Request::Replicate { from_seq: 17 }
        );
    }

    #[test]
    fn dataset_field_parses() {
        // Absent and null both mean "the default dataset".
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap().dataset, None);
        assert_eq!(
            parse_request(r#"{"op":"stats","dataset":null}"#)
                .unwrap()
                .dataset,
            None
        );
        assert_eq!(
            parse_request(r#"{"op":"stats","dataset":"jobs"}"#)
                .unwrap()
                .dataset,
            Some("jobs".to_string())
        );
        let err = parse_request(r#"{"op":"stats","dataset":7}"#).unwrap_err();
        assert_eq!(err.error.code, ErrorCode::BadRequest);
        assert!(err.error.message.contains("`dataset` must be a string"));
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("", "unexpected end"),
            ("not json", "invalid literal"),
            ("@garbage", "unexpected `@`"),
            ("[1,2]", "must be a JSON object"),
            ("{}", "missing string field `op`"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"insert"}"#, "needs `row` or `rows`"),
            (r#"{"op":"insert","rows":[]}"#, "at least one row"),
            (r#"{"op":"delete"}"#, "needs `row` or `rows`"),
            (r#"{"op":"delete","rows":[]}"#, "at least one row"),
            (
                r#"{"op":"delete","row":"f,black"}"#,
                "`row` must be an array",
            ),
            (
                r#"{"op":"insert","row":[true]}"#,
                "strings or integer codes",
            ),
            (
                r#"{"op":"insert","row":"f,black"}"#,
                "`row` must be an array",
            ),
            (
                r#"{"op":"insert","rows":["f","black"]}"#,
                "each row in `rows` must be an array",
            ),
            (r#"{"op":"mups","limit":-1}"#, "non-negative integer"),
            (r#"{"op":"mups","limit":1.5}"#, "non-negative integer"),
            (r#"{"op":"grow"}"#, "string field `attr`"),
            (
                r#"{"op":"grow","attr":7,"value":"v"}"#,
                "string field `attr`",
            ),
            (r#"{"op":"grow","attr":"race"}"#, "field `value`"),
            (
                r#"{"op":"grow","attr":"race","value":[1]}"#,
                "strings or integer codes",
            ),
            (r#"{"op":"coverage"}"#, "string field `pattern`"),
            (
                r#"{"op":"enhance","lambda":"two"}"#,
                "integer field `lambda`",
            ),
            (r#"{"op":"replicate"}"#, "integer field `from`"),
            (r#"{"op":"replicate","from":-1}"#, "integer field `from`"),
            (r#"{"op":"stats"} trailing"#, "trailing characters"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(
                err.error.message.contains(needle),
                "line `{line}` gave `{}`",
                err.error.message
            );
        }
    }

    #[test]
    fn malformed_requests_carry_machine_codes() {
        for (line, code) in [
            ("not json", ErrorCode::Parse),
            ("[1,2]", ErrorCode::Parse),
            ("{}", ErrorCode::Parse),
            (r#"{"op":"frobnicate"}"#, ErrorCode::UnknownOp),
            (r#"{"op":"insert"}"#, ErrorCode::BadRequest),
            (r#"{"op":"insert","id":[1]}"#, ErrorCode::BadRequest),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.error.code, code, "line `{line}`");
        }
    }

    #[test]
    fn ids_parse_and_echo() {
        // String, integer, and float ids all round-trip.
        let env = parse_request(r#"{"op":"stats","id":"abc"}"#).unwrap();
        assert_eq!(env.id, Some(RequestId::Str("abc".into())));
        let env = parse_request(r#"{"op":"stats","id":7}"#).unwrap();
        assert_eq!(env.id, Some(RequestId::Num(7.0)));
        // `null` id means "no id", like an absent field.
        let env = parse_request(r#"{"op":"stats","id":null}"#).unwrap();
        assert_eq!(env.id, None);
        // Integer ids echo without a decimal point; floats keep theirs.
        let mut out = String::new();
        write_request_id(&mut out, &RequestId::Num(7.0));
        assert_eq!(out, "7");
        let mut out = String::new();
        write_request_id(&mut out, &RequestId::Num(1.5));
        assert_eq!(out, "1.5");
        let mut out = String::new();
        write_request_id(&mut out, &RequestId::Str("a\"b".into()));
        assert_eq!(out, "\"a\\\"b\"");
    }

    #[test]
    fn semantic_errors_echo_the_id() {
        // The id is recovered even when the op is bad, so pipelined
        // clients can correlate the failure.
        let err = parse_request(r#"{"op":"frobnicate","id":42}"#).unwrap_err();
        assert_eq!(err.id, Some(RequestId::Num(42.0)));
        assert_eq!(err.error.code, ErrorCode::UnknownOp);
        let resp = error_response(err.id.as_ref(), &err.error);
        assert!(resp.starts_with("{\"ok\":false,\"id\":42,\"code\":\"unknown_op\""));
        // A line that is not JSON at all cannot yield an id.
        let err = parse_request("garbage").unwrap_err();
        assert_eq!(err.id, None);
    }

    #[test]
    fn json_parser_covers_the_grammar() {
        let doc = Json::parse(
            r#" {"a": [1, -2.5, 1e3], "b": {"nested": null}, "c": true, "d": "q\"\\\nA😀"} "#,
        )
        .unwrap();
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap(),
            &[Json::Number(1.0), Json::Number(-2.5), Json::Number(1000.0)]
        );
        assert_eq!(doc.get("b").unwrap().get("nested"), Some(&Json::Null));
        assert_eq!(doc.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("d").unwrap().as_str(), Some("q\"\\\nA😀"));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        for bad in [
            "{",
            "{\"a\"}",
            "[1,]",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"lone \\ud800 surrogate\"",
            "01a",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        // 200k unclosed brackets must come back as an error response, not
        // abort the serving process.
        let bomb = "[".repeat(200_000);
        assert!(Json::parse(&bomb).unwrap_err().contains("nesting"));
        let nested_obj = "{\"a\":".repeat(200_000);
        assert!(Json::parse(&nested_obj).unwrap_err().contains("nesting"));
        // Depth is tracked, not merely counted: 70 sequential sibling
        // arrays are fine even though 70 > MAX_DEPTH nested would not be.
        let wide = format!("[{}]", vec!["[]"; 70].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // Regression: per-char suffix re-validation made this quadratic
        // (~2 s at 400 kB); linear parsing handles 1 MB in milliseconds.
        let payload = "a".repeat(1 << 20);
        let line = format!("{{\"op\":\"coverage\",\"pattern\":\"{payload}\"}}");
        let start = std::time::Instant::now();
        let doc = Json::parse(&line).unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "string parse took {:?}",
            start.elapsed()
        );
        assert_eq!(
            doc.get("pattern").and_then(Json::as_str).map(str::len),
            Some(payload.len())
        );
    }

    #[test]
    fn as_u64_rejects_two_pow_64_and_up() {
        // Regression: `n <= u64::MAX as f64` admitted 2^64 (the cast rounds
        // the bound up) and silently saturated it to u64::MAX.
        assert_eq!(Json::parse("18446744073709551616").unwrap().as_u64(), None);
        // u64::MAX itself rounds to 2^64 as an f64, so it is rejected too
        // rather than silently misparsed.
        assert_eq!(Json::parse("18446744073709551615").unwrap().as_u64(), None);
        // The largest f64 below 2^64 and friends are exact and accepted.
        assert_eq!(
            Json::parse("18446744073709549568").unwrap().as_u64(),
            Some(18446744073709549568)
        );
        assert_eq!(
            Json::parse("9223372036854775808").unwrap().as_u64(),
            Some(1 << 63)
        );
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let doc = Json::parse(r#"{"op":"stats","op":"mups"}"#).unwrap();
        assert_eq!(doc.get("op").and_then(Json::as_str), Some("mups"));
    }

    #[test]
    fn string_writer_escapes() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{0001}e");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001e\"");
        // Round trip through the parser.
        assert_eq!(
            Json::parse(&out).unwrap().as_str(),
            Some("a\"b\\c\nd\u{0001}e")
        );
    }

    #[test]
    fn error_response_shape() {
        let err = ServeError::new(ErrorCode::BadRequest, "boom \"quoted\"");
        let resp = error_response(None, &err);
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("code").and_then(Json::as_str), Some("bad_request"));
        assert_eq!(
            doc.get("error").and_then(Json::as_str),
            Some("boom \"quoted\"")
        );
        assert_eq!(doc.get("id"), None);
        // With an id, the echo comes right after `ok` for easy scanning.
        let resp = error_response(Some(&RequestId::Str("x".into())), &err);
        assert!(resp.starts_with("{\"ok\":false,\"id\":\"x\","));
    }
}
