//! The newline-delimited JSON request/response protocol.
//!
//! One request per line, one response line per request, always an object:
//!
//! ```text
//! → {"op":"insert","row":["f","black"]}
//! ← {"ok":true,"op":"insert","inserted":1,"rows":6,"tau":1,"mups":2}
//! → {"op":"mups","limit":10}
//! ← {"ok":true,"op":"mups","count":2,"tau":1,"mups":["1XX","X10"],"decoded":["sex=f","race=black, age=young"]}
//! ```
//!
//! Malformed lines never kill the connection — they produce
//! `{"ok":false,"error":"..."}` responses. The JSON reader/writer is
//! hand-rolled (vendoring policy: no new external dependencies) and covers
//! the full value grammar: objects, arrays, strings with escapes and
//! `\uXXXX` (including surrogate pairs), numbers, booleans, null.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like browsers do).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, matching common parsers).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            text: input,
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a key in an object (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    ///
    /// The upper bound is strict: `u64::MAX as f64` rounds *up* to 2^64, so
    /// a `<=` comparison would admit `18446744073709551616` (and the f64
    /// rounding of `u64::MAX` itself) and silently saturate the cast to
    /// `u64::MAX`; `<` rejects everything from 2^64 up instead.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Number(n) if n >= 0.0 && n.fract() == 0.0 && n < u64::MAX as f64 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Nesting bound for the recursive-descent parser: requests are flat
/// (depth ≤ 3), but a hostile line of `[[[…` must produce an error
/// response, not a stack overflow that kills the whole server.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    /// The input as a `&str`: already-valid UTF-8, so multi-byte scalars in
    /// strings decode in O(1) instead of re-validating the suffix.
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid low surrogate".into());
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err("lone low surrogate".into());
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or("invalid unicode escape")?);
                        }
                        other => {
                            return Err(format!("invalid escape `\\{}`", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` only ever advances by
                    // whole scalars, so this O(1) str slice cannot split a
                    // character (and cannot re-validate the whole suffix,
                    // which would make long strings quadratic to parse).
                    let ch = self.text[self.pos..].chars().next().expect("non-empty");
                    if (ch as u32) < 0x20 {
                        return Err("unescaped control character in string".into());
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let code = u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(code)
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

/// Appends `s` to `out` as a quoted JSON string with all required escapes.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A validated protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Ingest one or more tuples (`"row"` or `"rows"`), values given as
    /// attribute value names (or numeric codes).
    Insert {
        /// The tuples, outer = rows, inner = per-attribute raw values.
        rows: Vec<Vec<String>>,
    },
    /// Remove one or more tuples (`"row"` or `"rows"`, same shapes as
    /// `insert`); every requested copy must be present or the batch is
    /// rejected atomically.
    Delete {
        /// The tuples to remove, outer = rows, inner = raw values.
        rows: Vec<Vec<String>>,
    },
    /// Register a brand-new value on an attribute's dictionary, growing its
    /// cardinality by one, without touching any row.
    Grow {
        /// Name of the attribute to grow.
        attribute: String,
        /// The new value's name.
        value: String,
    },
    /// Write the engine state to the server's configured snapshot path.
    Snapshot,
    /// Replace the engine with the state in the configured snapshot path.
    Restore,
    /// List the current MUPs, optionally truncated.
    Mups {
        /// Maximum number of patterns to return.
        limit: Option<usize>,
    },
    /// Query `cov(P)` for a pattern in compact notation (`1XX`).
    Coverage {
        /// The pattern text.
        pattern: String,
    },
    /// Plan coverage enhancement for level λ.
    Enhance {
        /// The target level λ.
        lambda: usize,
    },
    /// Engine statistics.
    Stats,
}

/// Converts a JSON value into one raw attribute value.
fn raw_value(v: &Json) -> Result<String, String> {
    match v {
        Json::String(s) => Ok(s.clone()),
        Json::Number(n) if n.fract() == 0.0 => Ok(format!("{}", *n as i64)),
        other => Err(format!(
            "row values must be strings or integer codes, got {other:?}"
        )),
    }
}

/// One tuple: an array of raw attribute values. `what` names the offending
/// field in errors (`row`, or an element of `rows`).
fn parse_one_row(value: &Json, what: &str) -> Result<Vec<String>, String> {
    let items = value
        .as_array()
        .ok_or_else(|| format!("{what} must be an array of values"))?;
    items.iter().map(raw_value).collect()
}

/// The `"row"` / `"rows"` payload shared by `insert` and `delete`. `op`
/// names the operation in error messages.
fn parse_rows(doc: &Json, op: &str) -> Result<Vec<Vec<String>>, String> {
    let rows = match (doc.get("rows"), doc.get("row")) {
        (Some(rows), _) => rows
            .as_array()
            .ok_or("`rows` must be an array of rows")?
            .iter()
            .map(|row| parse_one_row(row, "each row in `rows`"))
            .collect::<Result<Vec<_>, _>>()?,
        (None, Some(row)) => vec![parse_one_row(row, "`row`")?],
        (None, None) => return Err(format!("{op} needs `row` or `rows`")),
    };
    if rows.is_empty() {
        return Err(format!("{op} needs at least one row"));
    }
    Ok(rows)
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line)?;
    if !matches!(doc, Json::Object(_)) {
        return Err("request must be a JSON object".into());
    }
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field `op`")?;
    match op {
        "insert" => Ok(Request::Insert {
            rows: parse_rows(&doc, "insert")?,
        }),
        "delete" => Ok(Request::Delete {
            rows: parse_rows(&doc, "delete")?,
        }),
        "grow" => {
            let attribute = doc
                .get("attr")
                .and_then(Json::as_str)
                .ok_or("grow needs a string field `attr` (the attribute name)")?;
            let value = doc
                .get("value")
                .ok_or("grow needs a field `value` (the new value's name)")?;
            Ok(Request::Grow {
                attribute: attribute.to_string(),
                value: raw_value(value)?,
            })
        }
        "snapshot" => Ok(Request::Snapshot),
        "restore" => Ok(Request::Restore),
        "mups" => {
            let limit = match doc.get("limit") {
                None | Some(Json::Null) => None,
                Some(v) => {
                    Some(v.as_u64().ok_or("`limit` must be a non-negative integer")? as usize)
                }
            };
            Ok(Request::Mups { limit })
        }
        "coverage" => {
            let pattern = doc
                .get("pattern")
                .and_then(Json::as_str)
                .ok_or("coverage needs a string field `pattern`")?;
            Ok(Request::Coverage {
                pattern: pattern.to_string(),
            })
        }
        "enhance" => {
            let lambda = doc
                .get("lambda")
                .and_then(Json::as_u64)
                .ok_or("enhance needs a non-negative integer field `lambda`")?;
            Ok(Request::Enhance {
                lambda: lambda as usize,
            })
        }
        "stats" => Ok(Request::Stats),
        other => Err(format!(
            "unknown op `{other}` (expected insert|delete|grow|mups|coverage|enhance|stats|snapshot|restore)"
        )),
    }
}

/// Builds the `{"ok":false,...}` response for a rejected request.
pub fn error_response(message: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    write_json_string(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_ops() {
        assert_eq!(
            parse_request(r#"{"op":"insert","row":["f","black"]}"#).unwrap(),
            Request::Insert {
                rows: vec![vec!["f".into(), "black".into()]]
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"insert","rows":[["a","b"],["c","d"]]}"#).unwrap(),
            Request::Insert {
                rows: vec![vec!["a".into(), "b".into()], vec!["c".into(), "d".into()]]
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"insert","row":[1,0]}"#).unwrap(),
            Request::Insert {
                rows: vec![vec!["1".into(), "0".into()]]
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"delete","row":["f","black"]}"#).unwrap(),
            Request::Delete {
                rows: vec![vec!["f".into(), "black".into()]]
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"delete","rows":[["a","b"],["c","d"]]}"#).unwrap(),
            Request::Delete {
                rows: vec![vec!["a".into(), "b".into()], vec!["c".into(), "d".into()]]
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"grow","attr":"race","value":"hispanic"}"#).unwrap(),
            Request::Grow {
                attribute: "race".into(),
                value: "hispanic".into()
            }
        );
        // Numeric values stringify, mirroring row cells.
        assert_eq!(
            parse_request(r#"{"op":"grow","attr":"age","value":7}"#).unwrap(),
            Request::Grow {
                attribute: "age".into(),
                value: "7".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"snapshot"}"#).unwrap(),
            Request::Snapshot
        );
        assert_eq!(
            parse_request(r#"{"op":"restore"}"#).unwrap(),
            Request::Restore
        );
        assert_eq!(
            parse_request(r#"{"op":"mups"}"#).unwrap(),
            Request::Mups { limit: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"mups","limit":5}"#).unwrap(),
            Request::Mups { limit: Some(5) }
        );
        assert_eq!(
            parse_request(r#"{"op":"coverage","pattern":"1XX"}"#).unwrap(),
            Request::Coverage {
                pattern: "1XX".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"enhance","lambda":2}"#).unwrap(),
            Request::Enhance { lambda: 2 }
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("", "unexpected end"),
            ("not json", "invalid literal"),
            ("@garbage", "unexpected `@`"),
            ("[1,2]", "must be a JSON object"),
            ("{}", "missing string field `op`"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"insert"}"#, "needs `row` or `rows`"),
            (r#"{"op":"insert","rows":[]}"#, "at least one row"),
            (r#"{"op":"delete"}"#, "needs `row` or `rows`"),
            (r#"{"op":"delete","rows":[]}"#, "at least one row"),
            (
                r#"{"op":"delete","row":"f,black"}"#,
                "`row` must be an array",
            ),
            (
                r#"{"op":"insert","row":[true]}"#,
                "strings or integer codes",
            ),
            (
                r#"{"op":"insert","row":"f,black"}"#,
                "`row` must be an array",
            ),
            (
                r#"{"op":"insert","rows":["f","black"]}"#,
                "each row in `rows` must be an array",
            ),
            (r#"{"op":"mups","limit":-1}"#, "non-negative integer"),
            (r#"{"op":"mups","limit":1.5}"#, "non-negative integer"),
            (r#"{"op":"grow"}"#, "string field `attr`"),
            (
                r#"{"op":"grow","attr":7,"value":"v"}"#,
                "string field `attr`",
            ),
            (r#"{"op":"grow","attr":"race"}"#, "field `value`"),
            (
                r#"{"op":"grow","attr":"race","value":[1]}"#,
                "strings or integer codes",
            ),
            (r#"{"op":"coverage"}"#, "string field `pattern`"),
            (
                r#"{"op":"enhance","lambda":"two"}"#,
                "integer field `lambda`",
            ),
            (r#"{"op":"stats"} trailing"#, "trailing characters"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "line `{line}` gave `{err}`");
        }
    }

    #[test]
    fn json_parser_covers_the_grammar() {
        let doc = Json::parse(
            r#" {"a": [1, -2.5, 1e3], "b": {"nested": null}, "c": true, "d": "q\"\\\nA😀"} "#,
        )
        .unwrap();
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap(),
            &[Json::Number(1.0), Json::Number(-2.5), Json::Number(1000.0)]
        );
        assert_eq!(doc.get("b").unwrap().get("nested"), Some(&Json::Null));
        assert_eq!(doc.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("d").unwrap().as_str(), Some("q\"\\\nA😀"));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        for bad in [
            "{",
            "{\"a\"}",
            "[1,]",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"lone \\ud800 surrogate\"",
            "01a",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        // 200k unclosed brackets must come back as an error response, not
        // abort the serving process.
        let bomb = "[".repeat(200_000);
        assert!(Json::parse(&bomb).unwrap_err().contains("nesting"));
        let nested_obj = "{\"a\":".repeat(200_000);
        assert!(Json::parse(&nested_obj).unwrap_err().contains("nesting"));
        // Depth is tracked, not merely counted: 70 sequential sibling
        // arrays are fine even though 70 > MAX_DEPTH nested would not be.
        let wide = format!("[{}]", vec!["[]"; 70].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // Regression: per-char suffix re-validation made this quadratic
        // (~2 s at 400 kB); linear parsing handles 1 MB in milliseconds.
        let payload = "a".repeat(1 << 20);
        let line = format!("{{\"op\":\"coverage\",\"pattern\":\"{payload}\"}}");
        let start = std::time::Instant::now();
        let doc = Json::parse(&line).unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "string parse took {:?}",
            start.elapsed()
        );
        assert_eq!(
            doc.get("pattern").and_then(Json::as_str).map(str::len),
            Some(payload.len())
        );
    }

    #[test]
    fn as_u64_rejects_two_pow_64_and_up() {
        // Regression: `n <= u64::MAX as f64` admitted 2^64 (the cast rounds
        // the bound up) and silently saturated it to u64::MAX.
        assert_eq!(Json::parse("18446744073709551616").unwrap().as_u64(), None);
        // u64::MAX itself rounds to 2^64 as an f64, so it is rejected too
        // rather than silently misparsed.
        assert_eq!(Json::parse("18446744073709551615").unwrap().as_u64(), None);
        // The largest f64 below 2^64 and friends are exact and accepted.
        assert_eq!(
            Json::parse("18446744073709549568").unwrap().as_u64(),
            Some(18446744073709549568)
        );
        assert_eq!(
            Json::parse("9223372036854775808").unwrap().as_u64(),
            Some(1 << 63)
        );
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let doc = Json::parse(r#"{"op":"stats","op":"mups"}"#).unwrap();
        assert_eq!(doc.get("op").and_then(Json::as_str), Some("mups"));
    }

    #[test]
    fn string_writer_escapes() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{0001}e");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001e\"");
        // Round trip through the parser.
        assert_eq!(
            Json::parse(&out).unwrap().as_str(),
            Some("a\"b\\c\nd\u{0001}e")
        );
    }

    #[test]
    fn error_response_shape() {
        let resp = error_response("boom \"quoted\"");
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("error").and_then(Json::as_str),
            Some("boom \"quoted\"")
        );
    }
}
