//! The long-lived [`CoverageEngine`]: a mutable dataset + coverage backend
//! whose MUP set is maintained incrementally as tuples stream in — and out.
//!
//! The engine is generic over [`CoverageBackend`]: the canonical
//! single-shard [`CoverageOracle`] is the default, and
//! [`coverage_index::ShardedOracle`] (what `mithra serve --shards N` runs)
//! spreads ingest and wide probes over several cores. All maintenance logic
//! is backend-agnostic — it only speaks [`CoverageProvider`].
//!
//! * Fixed (count) thresholds take the pure delta path: an insert re-probes
//!   only the MUPs matching it (retired ones are replaced by a bounded
//!   neighborhood walk below them), a delete re-probes only the covered
//!   sublattice matching the removed tuple (newly uncovered ancestors retire
//!   the MUPs they dominate) — never a full re-discovery.
//! * Rate thresholds re-resolve `τ = max(1, round(f·n))` after every batch;
//!   while the resolved τ is unchanged the delta path applies, and on the
//!   rare batch where τ steps (up on inserts, down on deletes) the engine
//!   falls back to one DEEPDIVER run over the (incrementally maintained)
//!   oracle, since a shifted τ can flip patterns far from the frontier.

use coverage_core::enhance::{CoverageEnhancer, EnhancementPlan, GreedyHittingSet};
use coverage_core::mup::{DeepDiver, MupAlgorithm};
use coverage_core::pattern::Pattern;
use coverage_core::{CoverageReport, Threshold};
use coverage_data::Dataset;
use coverage_index::{CoverageBackend, CoverageOracle, X};

use crate::cache::CoverageCache;
use crate::delta::{apply_delete_delta, apply_insert_delta, coverage_cached};
use crate::{Result, ServiceError};

/// Default bound on the pattern-coverage memo cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Counters describing the engine's maintenance work so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Rows ingested through [`CoverageEngine::insert`] /
    /// [`CoverageEngine::insert_batch`] (the initial dataset not included).
    pub inserts: u64,
    /// Insert batches processed (a single insert counts as a batch of one).
    pub batches: u64,
    /// Rows removed through [`CoverageEngine::remove`] /
    /// [`CoverageEngine::remove_batch`].
    pub deletes: u64,
    /// Delete batches processed (a single remove counts as a batch of one).
    pub delete_batches: u64,
    /// MUPs retired (covered by newly arrived tuples, or dominated by newly
    /// uncovered ancestors after deletes).
    pub mups_retired: u64,
    /// MUPs discovered by delta walks around retired ones.
    pub mups_discovered: u64,
    /// Full DEEPDIVER fallbacks triggered by a shifted rate threshold (or a
    /// post-panic [`CoverageEngine::rebuild`]).
    pub full_recomputes: u64,
}

/// A long-lived coverage engine over a mutable dataset, generic over the
/// coverage backend (`B`). The default backend is the single-shard
/// [`CoverageOracle`].
#[derive(Debug, Clone)]
pub struct CoverageEngine<B: CoverageBackend = CoverageOracle> {
    dataset: Dataset,
    oracle: B,
    /// Shard-layout hint passed to [`CoverageBackend::build`] on every
    /// (re)build; single-shard backends ignore it.
    shards: usize,
    threshold: Threshold,
    tau: u64,
    mups: Vec<Pattern>,
    cache: CoverageCache,
    stats: EngineStats,
    /// Values added per attribute through [`Self::grow_value`] since the
    /// engine was built (restored engines carry the counters over via
    /// snapshot v3) — the dictionary-growth signal `stats` surfaces.
    grown: Vec<u64>,
}

impl CoverageEngine {
    /// Builds a single-shard engine over `dataset`, running one initial
    /// DEEPDIVER audit.
    pub fn new(dataset: Dataset, threshold: Threshold) -> Result<Self> {
        Self::with_cache_capacity(dataset, threshold, DEFAULT_CACHE_CAPACITY)
    }

    /// Like [`Self::new`] with an explicit memo-cache bound (0 disables the
    /// cache).
    pub fn with_cache_capacity(
        dataset: Dataset,
        threshold: Threshold,
        cache_capacity: usize,
    ) -> Result<Self> {
        Self::with_config(dataset, threshold, 1, cache_capacity)
    }
}

impl<B: CoverageBackend> CoverageEngine<B> {
    /// Builds an engine whose backend is laid out over `shards` row shards
    /// (a hint — single-shard backends ignore it, sharded backends clamp it
    /// to at least 1), running one initial DEEPDIVER audit.
    pub fn with_shards(dataset: Dataset, threshold: Threshold, shards: usize) -> Result<Self> {
        Self::with_config(dataset, threshold, shards, DEFAULT_CACHE_CAPACITY)
    }

    /// Fully explicit constructor: shard-layout hint plus memo-cache bound
    /// (0 disables the cache).
    pub fn with_config(
        dataset: Dataset,
        threshold: Threshold,
        shards: usize,
        cache_capacity: usize,
    ) -> Result<Self> {
        let shards = shards.max(1);
        let oracle = B::build(&dataset, shards);
        let tau = threshold.resolve(dataset.len() as u64)?;
        let mut mups = DeepDiver::default().find_mups_with_oracle(&oracle, tau)?;
        mups.sort();
        let grown = vec![0; dataset.arity()];
        Ok(Self {
            dataset,
            oracle,
            shards,
            threshold,
            tau,
            mups,
            cache: CoverageCache::new(cache_capacity),
            stats: EngineStats::default(),
            grown,
        })
    }

    fn validate(&self, row: &[u8]) -> Result<()> {
        let schema = self.dataset.schema();
        if row.len() != schema.arity() {
            return Err(ServiceError::BadRequest(format!(
                "row has {} values, schema has {} attributes",
                row.len(),
                schema.arity()
            )));
        }
        for (i, &v) in row.iter().enumerate() {
            if v >= schema.cardinality(i) {
                return Err(ServiceError::BadRequest(format!(
                    "value code {v} out of range for attribute `{}` (cardinality {})",
                    schema.attribute(i).name(),
                    schema.cardinality(i)
                )));
            }
        }
        Ok(())
    }

    /// Ingests one tuple, incrementally maintaining the MUP set. This is the
    /// streaming hot path: the row is borrowed all the way down — no copy.
    pub fn insert(&mut self, row: &[u8]) -> Result<()> {
        self.insert_rows(std::slice::from_ref(&row))
    }

    /// Ingests a batch of tuples atomically: either every row is valid and
    /// applied, or none is.
    pub fn insert_batch(&mut self, rows: &[Vec<u8>]) -> Result<()> {
        self.insert_rows(rows)
    }

    fn insert_rows<R: AsRef<[u8]>>(&mut self, rows: &[R]) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        if self.dataset.is_labeled() {
            // push_row would fail halfway through and break batch atomicity.
            return Err(ServiceError::BadRequest(
                "labeled datasets do not support streaming inserts".into(),
            ));
        }
        for row in rows {
            self.validate(row.as_ref())?;
        }
        for row in rows {
            self.dataset
                .push_row(row.as_ref())
                .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        }
        if let [row] = rows {
            // Streaming hot path: a single row needs no routing scaffolding
            // — the borrowed row goes straight down, allocation-free.
            self.oracle.add_row(row.as_ref());
        } else {
            // One batch hand-off to the backend: a sharded oracle splits
            // this into shard-local sub-batches and ingests them in
            // parallel.
            let refs: Vec<&[u8]> = rows.iter().map(AsRef::as_ref).collect();
            self.oracle.add_rows(&refs);
        }
        self.cache.invalidate_matching_any(rows);
        self.stats.inserts += rows.len() as u64;
        self.stats.batches += 1;
        let new_tau = self.threshold.resolve(self.dataset.len() as u64)?;
        if new_tau != self.tau {
            // The resolved rate threshold stepped up: patterns anywhere may
            // have dropped below it, so the delta walk is not sound here.
            self.tau = new_tau;
            self.mups = DeepDiver::default().find_mups_with_oracle(&self.oracle, new_tau)?;
            self.stats.full_recomputes += 1;
        } else {
            let outcome = apply_insert_delta(
                &self.oracle,
                &mut self.cache,
                self.tau,
                &mut self.mups,
                rows,
            );
            self.stats.mups_retired += outcome.retired as u64;
            self.stats.mups_discovered += outcome.discovered as u64;
        }
        self.mups.sort();
        Ok(())
    }

    /// Removes one tuple (one copy of it), incrementally maintaining the MUP
    /// set. Borrowed all the way down, like [`Self::insert`].
    pub fn remove(&mut self, row: &[u8]) -> Result<()> {
        self.remove_rows(std::slice::from_ref(&row))
    }

    /// Removes a batch of tuples atomically: either every requested copy is
    /// present (counting multiplicity within the batch) and removed, or
    /// nothing changes.
    pub fn remove_batch(&mut self, rows: &[Vec<u8>]) -> Result<()> {
        self.remove_rows(rows)
    }

    fn remove_rows<R: AsRef<[u8]>>(&mut self, rows: &[R]) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        if self.dataset.is_labeled() {
            return Err(ServiceError::BadRequest(
                "labeled datasets do not support streaming deletes".into(),
            ));
        }
        for row in rows {
            self.validate(row.as_ref())?;
        }
        // Atomicity pre-check: every distinct row must be present at least
        // as many times as the batch removes it. `cov` of a fully
        // deterministic pattern is exactly that row's multiplicity.
        let mut batch_copies: std::collections::HashMap<&[u8], u64> =
            std::collections::HashMap::new();
        for row in rows {
            *batch_copies.entry(row.as_ref()).or_insert(0) += 1;
        }
        for (row, &copies) in &batch_copies {
            let present = self.oracle.coverage(row);
            if present < copies {
                return Err(ServiceError::RowNotFound(format!(
                    "cannot delete {copies} copies of row {row:?}: only {present} present"
                )));
            }
        }
        for row in rows {
            self.dataset
                .remove_row(row.as_ref())
                .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
            let removed = self.oracle.remove_row(row.as_ref());
            debug_assert!(removed, "pre-checked row vanished from the oracle");
        }
        self.cache.invalidate_matching_any(rows);
        self.stats.deletes += rows.len() as u64;
        self.stats.delete_batches += 1;
        let new_tau = self.threshold.resolve(self.dataset.len() as u64)?;
        if new_tau != self.tau {
            // The resolved rate threshold stepped down: patterns anywhere
            // may have risen above it, so the delta walk is not sound here.
            self.tau = new_tau;
            self.mups = DeepDiver::default().find_mups_with_oracle(&self.oracle, new_tau)?;
            self.stats.full_recomputes += 1;
        } else {
            let outcome = apply_delete_delta(
                &self.oracle,
                &mut self.cache,
                self.tau,
                &mut self.mups,
                rows,
            );
            self.stats.mups_retired += outcome.retired as u64;
            self.stats.mups_discovered += outcome.discovered as u64;
        }
        self.mups.sort();
        Ok(())
    }

    /// Registers a brand-new value on attribute `attribute`, growing the
    /// schema, the oracle, and the MUP set in lock-step, and returns the new
    /// value's code. Subsequent inserts may carry the code (or the value
    /// name, through the protocol).
    ///
    /// The MUP delta is O(1): no row coverage changes, so existing MUPs stay
    /// exactly where they are, and the only candidate new MUP is the level-1
    /// pattern `(X,…,v,…,X)` — any deeper pattern carrying `v` has an
    /// uncovered parent still carrying `v`, so it cannot be maximal. That
    /// candidate covers nothing (no row carries `v` yet) and its lone parent
    /// is the root, so it joins the frontier iff the root is covered; when
    /// the root itself is uncovered it already dominates everything and the
    /// frontier is unchanged. Rows carrying `v` arriving later retire it
    /// through the ordinary insert delta.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range attribute positions, duplicate value names, and
    /// growth beyond [`coverage_data::MAX_CARDINALITY`]; nothing changes on
    /// error.
    pub fn grow_value(&mut self, attribute: usize, value: impl Into<String>) -> Result<u8> {
        let code = self
            .dataset
            .grow_value(attribute, value)
            .map_err(|e| ServiceError::Core(e.into()))?;
        self.oracle.grow_value(attribute);
        self.grown[attribute] += 1;
        // τ depends only on n, which is unchanged — no re-resolution needed.
        let d = self.dataset.arity();
        let root = vec![X; d];
        if self.tau > 0 && self.oracle.covered(&root, self.tau) {
            let mut codes = root;
            codes[attribute] = code;
            self.mups.push(Pattern::from_codes(codes));
            self.mups.sort();
            self.stats.mups_discovered += 1;
        }
        Ok(code)
    }

    /// Rebuilds every derived structure (oracle, τ, MUP set, memo cache)
    /// from the dataset alone. The serving layer calls this after a request
    /// handler panics while holding the engine, whose derived state may have
    /// been torn mid-update; counted as a full recompute in [`Self::stats`].
    pub fn rebuild(&mut self) -> Result<()> {
        self.oracle = B::build(&self.dataset, self.shards);
        self.tau = self.threshold.resolve(self.dataset.len() as u64)?;
        self.mups = DeepDiver::default().find_mups_with_oracle(&self.oracle, self.tau)?;
        self.mups.sort();
        self.cache.clear();
        self.stats.full_recomputes += 1;
        Ok(())
    }

    /// Re-lays the backend out over `shards` row shards. Coverage answers
    /// are layout-independent, so the MUP set and τ stay valid — only the
    /// index is rebuilt (and the memo cache stays warm: cached counts are
    /// sums over all shards either way).
    pub fn reshard(&mut self, shards: usize) {
        self.shards = shards.max(1);
        self.oracle = B::build(&self.dataset, self.shards);
    }

    /// Reassembles an engine from snapshot parts **without re-running
    /// discovery** — the caller (the snapshot loader) vouches that `mups` is
    /// exactly the MUP set of `dataset` under `threshold`. The backend is
    /// rebuilt from the dataset over `shards` shards; stats and the
    /// per-attribute dictionary-growth counters (`grown`, zeros for pre-v3
    /// snapshots) carry over; the memo cache starts cold.
    pub fn from_snapshot_parts(
        dataset: Dataset,
        threshold: Threshold,
        mut mups: Vec<Pattern>,
        stats: EngineStats,
        shards: usize,
        grown: Vec<u64>,
    ) -> Result<Self> {
        if grown.len() != dataset.arity() {
            return Err(ServiceError::Snapshot(format!(
                "{} grown counters but {} attributes",
                grown.len(),
                dataset.arity()
            )));
        }
        let shards = shards.max(1);
        let oracle = B::build(&dataset, shards);
        let tau = threshold.resolve(dataset.len() as u64)?;
        mups.sort();
        Ok(Self {
            dataset,
            oracle,
            shards,
            threshold,
            tau,
            mups,
            cache: CoverageCache::new(DEFAULT_CACHE_CAPACITY),
            stats,
            grown,
        })
    }

    /// The current maximal uncovered patterns, sorted.
    pub fn mups(&self) -> &[Pattern] {
        &self.mups
    }

    /// `cov(P)` for a pattern given as raw codes ([`X`] = non-deterministic),
    /// answered through the memo cache.
    pub fn coverage(&mut self, codes: &[u8]) -> Result<u64> {
        let schema = self.dataset.schema();
        if codes.len() != schema.arity() {
            return Err(ServiceError::BadRequest(format!(
                "pattern has {} elements, schema has {} attributes",
                codes.len(),
                schema.arity()
            )));
        }
        for (i, &v) in codes.iter().enumerate() {
            if v != X && v >= schema.cardinality(i) {
                return Err(ServiceError::BadRequest(format!(
                    "pattern value {v} out of range for attribute `{}`",
                    schema.attribute(i).name()
                )));
            }
        }
        Ok(coverage_cached(&self.oracle, &mut self.cache, codes))
    }

    /// Whether `cov(P) ≥ τ` under the current resolved threshold.
    pub fn covered(&mut self, codes: &[u8]) -> Result<bool> {
        Ok(self.coverage(codes)? >= self.tau)
    }

    /// Plans the minimum data collection fixing every uncovered pattern at
    /// level `lambda`, with per-combination copy counts closing the deficit.
    pub fn enhance(&self, lambda: usize) -> Result<(EnhancementPlan, Vec<u64>)> {
        if lambda == 0 || lambda > self.dataset.arity() {
            return Err(ServiceError::BadRequest(format!(
                "lambda must be in 1..={}, got {lambda}",
                self.dataset.arity()
            )));
        }
        let plan = CoverageEnhancer::default().plan_for_level(
            &GreedyHittingSet,
            &self.mups,
            &self.dataset.schema().cardinalities(),
            lambda,
        )?;
        let copies = plan.required_copies(&self.oracle, self.tau);
        Ok((plan, copies))
    }

    /// A point-in-time coverage report (the paper's audit widget).
    pub fn report(&self) -> CoverageReport {
        CoverageReport::from_mups(
            self.mups.clone(),
            self.tau,
            self.dataset.len() as u64,
            self.dataset.arity(),
        )
    }

    /// The configured threshold (count or rate).
    pub fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// The currently resolved absolute threshold τ.
    pub fn tau(&self) -> u64 {
        self.tau
    }

    /// The live dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The incrementally maintained coverage backend.
    pub fn oracle(&self) -> &B {
        &self.oracle
    }

    /// The shard-layout hint the backend was built with.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Rows held per backend shard (`[rows]` for single-shard backends) —
    /// the skew signal the `stats` protocol op surfaces to operators.
    pub fn shard_layout(&self) -> Vec<u64> {
        self.oracle.shard_totals()
    }

    /// Maintenance counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Values added per attribute through [`Self::grow_value`] since the
    /// engine was built (carried across snapshot/restore).
    pub fn dictionary_growth(&self) -> &[u64] {
        &self.grown
    }

    /// Memo-cache counters: `(len, capacity, hits, misses, invalidated)`.
    /// `invalidated` counts entries dropped because an inserted or deleted
    /// tuple changed their coverage — the cache-churn signal operators watch
    /// under write-heavy load.
    pub fn cache_stats(&self) -> (usize, usize, u64, u64, u64) {
        (
            self.cache.len(),
            self.cache.capacity(),
            self.cache.hits(),
            self.cache.misses(),
            self.cache.invalidated(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::Schema;
    use rand::{Rng, SeedableRng};

    fn example1() -> Dataset {
        Dataset::from_rows(
            Schema::binary(3).unwrap(),
            &[
                vec![0, 1, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
                vec![0, 1, 1],
                vec![0, 0, 1],
            ],
        )
        .unwrap()
    }

    fn batch_mups(ds: &Dataset, threshold: Threshold) -> Vec<Pattern> {
        let mut mups = DeepDiver::default().find_mups(ds, threshold).unwrap();
        mups.sort();
        mups
    }

    #[test]
    fn initial_audit_matches_deepdiver() {
        let engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        assert_eq!(engine.mups(), batch_mups(&example1(), Threshold::Count(1)));
        assert_eq!(engine.tau(), 1);
    }

    #[test]
    fn incremental_inserts_track_batch_recompute() {
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(2)).unwrap();
        let mut materialized = example1();
        let stream = [
            vec![1u8, 0, 1],
            vec![1, 0, 1],
            vec![1, 1, 0],
            vec![0, 1, 0],
            vec![1, 1, 1],
            vec![1, 1, 1],
        ];
        for row in &stream {
            engine.insert(row).unwrap();
            materialized.push_row(row).unwrap();
            assert_eq!(
                engine.mups(),
                batch_mups(&materialized, Threshold::Count(2)),
                "after insert {row:?}"
            );
        }
        assert_eq!(engine.stats().inserts, stream.len() as u64);
        assert_eq!(engine.stats().full_recomputes, 0);
        assert!(engine.stats().mups_retired > 0);
    }

    #[test]
    fn batch_insert_equals_single_inserts() {
        let stream: Vec<Vec<u8>> = {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
            (0..40)
                .map(|_| (0..3).map(|_| rng.random_range(0..2u8)).collect())
                .collect()
        };
        let mut singles = CoverageEngine::new(example1(), Threshold::Count(3)).unwrap();
        for row in &stream {
            singles.insert(row).unwrap();
        }
        let mut batched = CoverageEngine::new(example1(), Threshold::Count(3)).unwrap();
        for chunk in stream.chunks(7) {
            batched.insert_batch(chunk).unwrap();
        }
        assert_eq!(singles.mups(), batched.mups());
    }

    #[test]
    fn rate_threshold_resteps_and_recomputes() {
        // Rate 0.2 over a growing dataset: τ starts at 1 and steps up every
        // 5 rows, forcing full-recompute fallbacks that must stay correct.
        let ds = example1();
        let mut engine = CoverageEngine::new(ds.clone(), Threshold::Fraction(0.2)).unwrap();
        assert_eq!(engine.tau(), 1);
        let mut materialized = ds;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for i in 0..30 {
            let row: Vec<u8> = (0..3).map(|_| rng.random_range(0..2u8)).collect();
            engine.insert(&row).unwrap();
            materialized.push_row(&row).unwrap();
            assert_eq!(
                engine.tau(),
                Threshold::Fraction(0.2)
                    .resolve(materialized.len() as u64)
                    .unwrap()
            );
            assert_eq!(
                engine.mups(),
                batch_mups(&materialized, Threshold::Fraction(0.2)),
                "after insert {i}"
            );
        }
        assert!(engine.stats().full_recomputes > 0);
        assert!(engine.stats().full_recomputes < 30);
    }

    #[test]
    fn insert_from_empty_dataset() {
        let mut engine = CoverageEngine::new(
            Dataset::new(Schema::binary(2).unwrap()),
            Threshold::Count(1),
        )
        .unwrap();
        // Empty dataset: the root is the single MUP.
        assert_eq!(engine.mups().len(), 1);
        assert_eq!(engine.mups()[0].level(), 0);
        for row in [[0u8, 0], [0, 1], [1, 0], [1, 1]] {
            engine.insert(&row).unwrap();
        }
        assert!(engine.mups().is_empty());
        assert_eq!(engine.report().maximum_covered_level(), 2);
    }

    #[test]
    fn bad_rows_are_rejected_atomically() {
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        let before_len = engine.dataset().len();
        let err = engine
            .insert_batch(&[vec![0, 0, 0], vec![0, 9, 0]])
            .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        assert_eq!(engine.dataset().len(), before_len, "batch must be atomic");
        assert!(engine.insert(&[0, 0]).is_err(), "arity mismatch");
    }

    #[test]
    fn coverage_queries_are_cached_and_validated() {
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        assert_eq!(engine.coverage(&[0, X, 1]).unwrap(), 3);
        assert_eq!(engine.coverage(&[0, X, 1]).unwrap(), 3);
        let (_, _, hits, _, _) = engine.cache_stats();
        assert!(hits >= 1);
        assert!(engine.coverage(&[0, X]).is_err());
        assert!(engine.coverage(&[0, 5, X]).is_err());
        assert!(engine.covered(&[X, X, X]).unwrap());
        assert!(!engine.covered(&[1, X, X]).unwrap());
    }

    #[test]
    fn incremental_deletes_track_batch_recompute() {
        // Grow the dataset, then shrink it back down, checking equivalence
        // with batch discovery after every single delete.
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(2)).unwrap();
        let stream = [
            vec![1u8, 0, 1],
            vec![1, 0, 1],
            vec![1, 1, 0],
            vec![0, 1, 0],
            vec![1, 1, 1],
            vec![1, 1, 1],
        ];
        for row in &stream {
            engine.insert(row).unwrap();
        }
        let mut materialized = example1();
        for row in &stream {
            materialized.push_row(row).unwrap();
        }
        for row in stream.iter().rev() {
            engine.remove(row).unwrap();
            materialized.remove_row(row).unwrap();
            let remaining: Vec<Vec<u8>> = materialized.rows().map(<[u8]>::to_vec).collect();
            let expected = batch_mups(
                &Dataset::from_rows(materialized.schema().clone(), &remaining).unwrap(),
                Threshold::Count(2),
            );
            assert_eq!(engine.mups(), expected, "after delete {row:?}");
        }
        assert_eq!(engine.stats().deletes, stream.len() as u64);
        assert_eq!(engine.stats().full_recomputes, 0);
        assert_eq!(engine.mups(), batch_mups(&example1(), Threshold::Count(2)));
    }

    #[test]
    fn delete_batch_is_atomic_and_validates_multiplicity() {
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        let before_len = engine.dataset().len();
        let before_mups = engine.mups().to_vec();
        // (0,0,1) appears twice; asking for three copies must change nothing.
        let err = engine
            .remove_batch(&[vec![0, 0, 1], vec![0, 0, 1], vec![0, 0, 1]])
            .unwrap_err();
        assert!(err.to_string().contains("only 2 present"), "{err}");
        assert_eq!(engine.dataset().len(), before_len);
        assert_eq!(engine.mups(), before_mups.as_slice());
        // Absent row.
        assert!(engine.remove(&[1, 1, 1]).is_err());
        // Arity / range validation mirrors the insert path.
        assert!(engine.remove(&[0, 0]).is_err());
        assert!(engine.remove(&[0, 9, 0]).is_err());
        // Exactly two copies works.
        engine
            .remove_batch(&[vec![0, 0, 1], vec![0, 0, 1]])
            .unwrap();
        assert_eq!(engine.dataset().len(), before_len - 2);
        assert_eq!(engine.stats().delete_batches, 1);
    }

    #[test]
    fn rate_threshold_steps_down_on_deletes_and_recomputes() {
        // Fraction 0.2: τ = max(1, round(n/5)) steps down as rows leave.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let rows: Vec<Vec<u8>> = (0..40)
            .map(|_| (0..3).map(|_| rng.random_range(0..2u8)).collect())
            .collect();
        let ds = Dataset::from_rows(Schema::binary(3).unwrap(), &rows).unwrap();
        let mut engine = CoverageEngine::new(ds, Threshold::Fraction(0.2)).unwrap();
        let mut remaining = rows;
        while remaining.len() > 3 {
            let row = remaining.pop().unwrap();
            engine.remove(&row).unwrap();
            assert_eq!(
                engine.tau(),
                Threshold::Fraction(0.2)
                    .resolve(remaining.len() as u64)
                    .unwrap()
            );
            let expected = batch_mups(
                &Dataset::from_rows(Schema::binary(3).unwrap(), &remaining).unwrap(),
                Threshold::Fraction(0.2),
            );
            assert_eq!(
                engine.mups(),
                expected,
                "after shrink to {}",
                remaining.len()
            );
        }
        assert!(engine.stats().full_recomputes > 0, "τ must have stepped");
    }

    #[test]
    fn remove_everything_then_reinsert() {
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        for row in example1().rows() {
            engine.remove(row).unwrap();
        }
        assert!(engine.dataset().is_empty());
        assert_eq!(engine.mups().len(), 1);
        assert_eq!(engine.mups()[0].level(), 0);
        engine.insert(&[1, 1, 1]).unwrap();
        assert!(engine.covered(&[1, 1, 1]).unwrap());
    }

    #[test]
    fn rebuild_restores_derived_state() {
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(2)).unwrap();
        engine.insert(&[1, 0, 1]).unwrap();
        let mups_before = engine.mups().to_vec();
        let recomputes_before = engine.stats().full_recomputes;
        engine.rebuild().unwrap();
        assert_eq!(engine.mups(), mups_before.as_slice());
        assert_eq!(engine.stats().full_recomputes, recomputes_before + 1);
        let (len, _, _, _, _) = engine.cache_stats();
        assert_eq!(len, 0, "rebuild starts the memo cache cold");
    }

    #[test]
    fn cache_stats_surface_invalidation_churn() {
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        // Prime the cache with a pattern matching the upcoming insert…
        assert_eq!(engine.coverage(&[0, X, 1]).unwrap(), 3);
        let (_, _, _, _, invalidated_before) = engine.cache_stats();
        engine.insert(&[0, 1, 1]).unwrap();
        let (_, _, _, _, invalidated) = engine.cache_stats();
        assert!(
            invalidated > invalidated_before,
            "insert matching a cached pattern must invalidate it"
        );
    }

    #[test]
    fn sharded_engine_tracks_the_single_shard_engine() {
        use coverage_index::ShardedOracle;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        let stream: Vec<Vec<u8>> = (0..60)
            .map(|_| (0..3).map(|_| rng.random_range(0..2u8)).collect())
            .collect();
        let mut single = CoverageEngine::new(example1(), Threshold::Count(2)).unwrap();
        let mut sharded =
            CoverageEngine::<ShardedOracle>::with_shards(example1(), Threshold::Count(2), 3)
                .unwrap();
        assert_eq!(sharded.mups(), single.mups());
        for (i, chunk) in stream.chunks(7).enumerate() {
            single.insert_batch(chunk).unwrap();
            sharded.insert_batch(chunk).unwrap();
            assert_eq!(sharded.mups(), single.mups(), "after batch {i}");
            assert_eq!(
                sharded.shard_layout().iter().sum::<u64>(),
                single.dataset().len() as u64
            );
        }
        for row in stream.iter().rev().take(30) {
            single.remove(row).unwrap();
            sharded.remove(row).unwrap();
            assert_eq!(sharded.mups(), single.mups(), "after delete {row:?}");
        }
        assert_eq!(sharded.shards(), 3);
        assert_eq!(sharded.shard_layout().len(), 3);
    }

    #[test]
    fn reshard_preserves_answers_and_mups() {
        use coverage_index::ShardedOracle;
        let ds = coverage_data::generators::airbnb_like(400, 4, 31).unwrap();
        let mut engine =
            CoverageEngine::<ShardedOracle>::with_shards(ds, Threshold::Count(5), 1).unwrap();
        let mups_before = engine.mups().to_vec();
        let cov_before = engine.coverage(&[1, X, X, X]).unwrap();
        engine.reshard(4);
        assert_eq!(engine.shards(), 4);
        assert_eq!(engine.shard_layout().len(), 4);
        assert_eq!(engine.mups(), mups_before.as_slice());
        assert_eq!(engine.coverage(&[1, X, X, X]).unwrap(), cov_before);
        // The resharded engine keeps maintaining correctly.
        engine.insert(&[0, 0, 0, 0]).unwrap();
        let expected = batch_mups(&engine.dataset().clone(), Threshold::Count(5));
        assert_eq!(engine.mups(), expected.as_slice());
    }

    #[test]
    fn grow_value_mints_the_level1_mup_and_tracks_batch() {
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        let before = engine.mups().len();
        let code = engine.grow_value(1, "third").unwrap();
        assert_eq!(code, 2);
        assert_eq!(engine.dataset().schema().cardinality(1), 3);
        assert_eq!(engine.dictionary_growth(), &[0, 1, 0]);
        // Exactly one new MUP: (X,2,X).
        assert_eq!(engine.mups().len(), before + 1);
        let expected = {
            let mut ds = Dataset::new(Schema::with_cardinalities(&[2, 3, 2]).unwrap());
            for row in example1().rows() {
                ds.push_row(row).unwrap();
            }
            batch_mups(&ds, Threshold::Count(1))
        };
        assert_eq!(engine.mups(), expected.as_slice());
        // Inserting rows carrying the new value retires it via the ordinary
        // insert delta and keeps tracking batch discovery.
        engine.insert(&[0, 2, 0]).unwrap();
        engine.insert(&[0, 2, 1]).unwrap();
        let expected = {
            let mut ds = Dataset::new(Schema::with_cardinalities(&[2, 3, 2]).unwrap());
            for row in example1().rows() {
                ds.push_row(row).unwrap();
            }
            ds.push_row(&[0, 2, 0]).unwrap();
            ds.push_row(&[0, 2, 1]).unwrap();
            batch_mups(&ds, Threshold::Count(1))
        };
        assert_eq!(engine.mups(), expected.as_slice());
        assert!(!engine.covered(&[1, 2, X]).unwrap());
        assert_eq!(engine.coverage(&[X, 2, X]).unwrap(), 2);
    }

    #[test]
    fn grow_value_under_uncovered_root_changes_nothing() {
        // τ above n: the root itself is uncovered, dominates everything, and
        // the grown value must not join the frontier.
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(10)).unwrap();
        assert_eq!(engine.mups(), &[Pattern::all_x(3)]);
        engine.grow_value(0, "extra").unwrap();
        assert_eq!(engine.mups(), &[Pattern::all_x(3)]);
        assert_eq!(engine.dictionary_growth(), &[1, 0, 0]);
    }

    #[test]
    fn grow_value_rejects_bad_requests_without_side_effects() {
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        let mups_before = engine.mups().to_vec();
        assert!(engine.grow_value(7, "nope").is_err(), "bad attribute index");
        engine.grow_value(0, "v").unwrap();
        let err = engine.grow_value(0, "v").unwrap_err();
        assert!(err.to_string().contains("already resolves"), "{err}");
        assert_eq!(engine.dataset().schema().cardinality(0), 3);
        assert_eq!(engine.dictionary_growth(), &[1, 0, 0]);
        assert_eq!(engine.mups().len(), mups_before.len() + 1);
    }

    #[test]
    fn grow_value_on_sharded_backend_tracks_single_shard() {
        use coverage_index::ShardedOracle;
        let mut single = CoverageEngine::new(example1(), Threshold::Count(2)).unwrap();
        let mut sharded =
            CoverageEngine::<ShardedOracle>::with_shards(example1(), Threshold::Count(2), 3)
                .unwrap();
        for engine_code in [
            single.grow_value(2, "new").unwrap(),
            sharded.grow_value(2, "new").unwrap(),
        ] {
            assert_eq!(engine_code, 2);
        }
        assert_eq!(sharded.mups(), single.mups());
        for row in [[0u8, 0, 2], [1, 1, 2], [0, 0, 2], [1, 1, 2]] {
            single.insert(&row).unwrap();
            sharded.insert(&row).unwrap();
            assert_eq!(sharded.mups(), single.mups(), "after {row:?}");
        }
        assert_eq!(sharded.dictionary_growth(), single.dictionary_growth());
    }

    #[test]
    fn enhance_plan_covers_lambda_frontier() {
        let engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        let (plan, copies) = engine.enhance(1).unwrap();
        assert_eq!(plan.combinations.len(), copies.len());
        for t in &plan.targets {
            assert!(plan.combinations.iter().any(|c| t.matches(c)));
        }
        assert!(engine.enhance(0).is_err());
        assert!(engine.enhance(4).is_err());
    }
}
