//! The long-lived [`CoverageEngine`]: a mutable dataset + oracle whose MUP
//! set is maintained incrementally as tuples stream in.
//!
//! * Fixed (count) thresholds take the pure delta path: only MUPs matching
//!   an inserted tuple are re-probed, and retired MUPs are replaced by a
//!   bounded neighborhood walk below them — never a full re-discovery.
//! * Rate thresholds re-resolve `τ = max(1, round(f·n))` after every batch;
//!   while the resolved τ is unchanged the delta path applies, and on the
//!   rare batch where τ steps up the engine falls back to one DEEPDIVER run
//!   over the (incrementally maintained) oracle, since a larger τ can
//!   uncover patterns far from the current frontier.

use coverage_core::enhance::{CoverageEnhancer, EnhancementPlan, GreedyHittingSet};
use coverage_core::mup::{DeepDiver, MupAlgorithm};
use coverage_core::pattern::Pattern;
use coverage_core::{CoverageReport, Threshold};
use coverage_data::Dataset;
use coverage_index::{CoverageOracle, X};

use crate::cache::CoverageCache;
use crate::delta::{apply_insert_delta, coverage_cached};
use crate::{Result, ServiceError};

/// Default bound on the pattern-coverage memo cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Counters describing the engine's maintenance work so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Rows ingested through [`CoverageEngine::insert`] /
    /// [`CoverageEngine::insert_batch`] (the initial dataset not included).
    pub inserts: u64,
    /// Insert batches processed (a single insert counts as a batch of one).
    pub batches: u64,
    /// MUPs retired (covered by newly arrived tuples).
    pub mups_retired: u64,
    /// MUPs discovered by delta walks below retired ones.
    pub mups_discovered: u64,
    /// Full DEEPDIVER fallbacks triggered by a shifted rate threshold.
    pub full_recomputes: u64,
}

/// A long-lived coverage engine over a mutable dataset.
#[derive(Debug, Clone)]
pub struct CoverageEngine {
    dataset: Dataset,
    oracle: CoverageOracle,
    threshold: Threshold,
    tau: u64,
    mups: Vec<Pattern>,
    cache: CoverageCache,
    stats: EngineStats,
}

impl CoverageEngine {
    /// Builds an engine over `dataset`, running one initial DEEPDIVER audit.
    pub fn new(dataset: Dataset, threshold: Threshold) -> Result<Self> {
        Self::with_cache_capacity(dataset, threshold, DEFAULT_CACHE_CAPACITY)
    }

    /// Like [`Self::new`] with an explicit memo-cache bound (0 disables the
    /// cache).
    pub fn with_cache_capacity(
        dataset: Dataset,
        threshold: Threshold,
        cache_capacity: usize,
    ) -> Result<Self> {
        let oracle = CoverageOracle::from_dataset(&dataset);
        let tau = threshold.resolve(dataset.len() as u64)?;
        let mut mups = DeepDiver::default().find_mups_with_oracle(&oracle, tau)?;
        mups.sort();
        Ok(Self {
            dataset,
            oracle,
            threshold,
            tau,
            mups,
            cache: CoverageCache::new(cache_capacity),
            stats: EngineStats::default(),
        })
    }

    fn validate(&self, row: &[u8]) -> Result<()> {
        let schema = self.dataset.schema();
        if row.len() != schema.arity() {
            return Err(ServiceError::BadRequest(format!(
                "row has {} values, schema has {} attributes",
                row.len(),
                schema.arity()
            )));
        }
        for (i, &v) in row.iter().enumerate() {
            if v >= schema.cardinality(i) {
                return Err(ServiceError::BadRequest(format!(
                    "value code {v} out of range for attribute `{}` (cardinality {})",
                    schema.attribute(i).name(),
                    schema.cardinality(i)
                )));
            }
        }
        Ok(())
    }

    /// Ingests one tuple, incrementally maintaining the MUP set.
    pub fn insert(&mut self, row: &[u8]) -> Result<()> {
        self.insert_batch(std::slice::from_ref(&row.to_vec()))
    }

    /// Ingests a batch of tuples atomically: either every row is valid and
    /// applied, or none is.
    pub fn insert_batch(&mut self, rows: &[Vec<u8>]) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        if self.dataset.is_labeled() {
            // push_row would fail halfway through and break batch atomicity.
            return Err(ServiceError::BadRequest(
                "labeled datasets do not support streaming inserts".into(),
            ));
        }
        for row in rows {
            self.validate(row)?;
        }
        for row in rows {
            self.dataset
                .push_row(row)
                .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
            self.oracle.add_row(row);
        }
        self.cache.invalidate_matching_any(rows);
        self.stats.inserts += rows.len() as u64;
        self.stats.batches += 1;
        let new_tau = self.threshold.resolve(self.dataset.len() as u64)?;
        if new_tau != self.tau {
            // The resolved rate threshold stepped up: patterns anywhere may
            // have dropped below it, so the delta walk is not sound here.
            self.tau = new_tau;
            self.mups = DeepDiver::default().find_mups_with_oracle(&self.oracle, new_tau)?;
            self.stats.full_recomputes += 1;
        } else {
            let outcome = apply_insert_delta(
                &self.oracle,
                &mut self.cache,
                self.tau,
                &mut self.mups,
                rows,
            );
            self.stats.mups_retired += outcome.retired as u64;
            self.stats.mups_discovered += outcome.discovered as u64;
        }
        self.mups.sort();
        Ok(())
    }

    /// The current maximal uncovered patterns, sorted.
    pub fn mups(&self) -> &[Pattern] {
        &self.mups
    }

    /// `cov(P)` for a pattern given as raw codes ([`X`] = non-deterministic),
    /// answered through the memo cache.
    pub fn coverage(&mut self, codes: &[u8]) -> Result<u64> {
        let schema = self.dataset.schema();
        if codes.len() != schema.arity() {
            return Err(ServiceError::BadRequest(format!(
                "pattern has {} elements, schema has {} attributes",
                codes.len(),
                schema.arity()
            )));
        }
        for (i, &v) in codes.iter().enumerate() {
            if v != X && v >= schema.cardinality(i) {
                return Err(ServiceError::BadRequest(format!(
                    "pattern value {v} out of range for attribute `{}`",
                    schema.attribute(i).name()
                )));
            }
        }
        Ok(coverage_cached(&self.oracle, &mut self.cache, codes))
    }

    /// Whether `cov(P) ≥ τ` under the current resolved threshold.
    pub fn covered(&mut self, codes: &[u8]) -> Result<bool> {
        Ok(self.coverage(codes)? >= self.tau)
    }

    /// Plans the minimum data collection fixing every uncovered pattern at
    /// level `lambda`, with per-combination copy counts closing the deficit.
    pub fn enhance(&self, lambda: usize) -> Result<(EnhancementPlan, Vec<u64>)> {
        if lambda == 0 || lambda > self.dataset.arity() {
            return Err(ServiceError::BadRequest(format!(
                "lambda must be in 1..={}, got {lambda}",
                self.dataset.arity()
            )));
        }
        let plan = CoverageEnhancer::default().plan_for_level(
            &GreedyHittingSet,
            &self.mups,
            &self.dataset.schema().cardinalities(),
            lambda,
        )?;
        let copies = plan.required_copies(&self.oracle, self.tau);
        Ok((plan, copies))
    }

    /// A point-in-time coverage report (the paper's audit widget).
    pub fn report(&self) -> CoverageReport {
        CoverageReport::from_mups(
            self.mups.clone(),
            self.tau,
            self.dataset.len() as u64,
            self.dataset.arity(),
        )
    }

    /// The configured threshold (count or rate).
    pub fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// The currently resolved absolute threshold τ.
    pub fn tau(&self) -> u64 {
        self.tau
    }

    /// The live dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The incrementally maintained oracle.
    pub fn oracle(&self) -> &CoverageOracle {
        &self.oracle
    }

    /// Maintenance counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Memo-cache counters: `(len, capacity, hits, misses)`.
    pub fn cache_stats(&self) -> (usize, usize, u64, u64) {
        (
            self.cache.len(),
            self.cache.capacity(),
            self.cache.hits(),
            self.cache.misses(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::Schema;
    use rand::{Rng, SeedableRng};

    fn example1() -> Dataset {
        Dataset::from_rows(
            Schema::binary(3).unwrap(),
            &[
                vec![0, 1, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
                vec![0, 1, 1],
                vec![0, 0, 1],
            ],
        )
        .unwrap()
    }

    fn batch_mups(ds: &Dataset, threshold: Threshold) -> Vec<Pattern> {
        let mut mups = DeepDiver::default().find_mups(ds, threshold).unwrap();
        mups.sort();
        mups
    }

    #[test]
    fn initial_audit_matches_deepdiver() {
        let engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        assert_eq!(engine.mups(), batch_mups(&example1(), Threshold::Count(1)));
        assert_eq!(engine.tau(), 1);
    }

    #[test]
    fn incremental_inserts_track_batch_recompute() {
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(2)).unwrap();
        let mut materialized = example1();
        let stream = [
            vec![1u8, 0, 1],
            vec![1, 0, 1],
            vec![1, 1, 0],
            vec![0, 1, 0],
            vec![1, 1, 1],
            vec![1, 1, 1],
        ];
        for row in &stream {
            engine.insert(row).unwrap();
            materialized.push_row(row).unwrap();
            assert_eq!(
                engine.mups(),
                batch_mups(&materialized, Threshold::Count(2)),
                "after insert {row:?}"
            );
        }
        assert_eq!(engine.stats().inserts, stream.len() as u64);
        assert_eq!(engine.stats().full_recomputes, 0);
        assert!(engine.stats().mups_retired > 0);
    }

    #[test]
    fn batch_insert_equals_single_inserts() {
        let stream: Vec<Vec<u8>> = {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
            (0..40)
                .map(|_| (0..3).map(|_| rng.random_range(0..2u8)).collect())
                .collect()
        };
        let mut singles = CoverageEngine::new(example1(), Threshold::Count(3)).unwrap();
        for row in &stream {
            singles.insert(row).unwrap();
        }
        let mut batched = CoverageEngine::new(example1(), Threshold::Count(3)).unwrap();
        for chunk in stream.chunks(7) {
            batched.insert_batch(chunk).unwrap();
        }
        assert_eq!(singles.mups(), batched.mups());
    }

    #[test]
    fn rate_threshold_resteps_and_recomputes() {
        // Rate 0.2 over a growing dataset: τ starts at 1 and steps up every
        // 5 rows, forcing full-recompute fallbacks that must stay correct.
        let ds = example1();
        let mut engine = CoverageEngine::new(ds.clone(), Threshold::Fraction(0.2)).unwrap();
        assert_eq!(engine.tau(), 1);
        let mut materialized = ds;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for i in 0..30 {
            let row: Vec<u8> = (0..3).map(|_| rng.random_range(0..2u8)).collect();
            engine.insert(&row).unwrap();
            materialized.push_row(&row).unwrap();
            assert_eq!(
                engine.tau(),
                Threshold::Fraction(0.2)
                    .resolve(materialized.len() as u64)
                    .unwrap()
            );
            assert_eq!(
                engine.mups(),
                batch_mups(&materialized, Threshold::Fraction(0.2)),
                "after insert {i}"
            );
        }
        assert!(engine.stats().full_recomputes > 0);
        assert!(engine.stats().full_recomputes < 30);
    }

    #[test]
    fn insert_from_empty_dataset() {
        let mut engine = CoverageEngine::new(
            Dataset::new(Schema::binary(2).unwrap()),
            Threshold::Count(1),
        )
        .unwrap();
        // Empty dataset: the root is the single MUP.
        assert_eq!(engine.mups().len(), 1);
        assert_eq!(engine.mups()[0].level(), 0);
        for row in [[0u8, 0], [0, 1], [1, 0], [1, 1]] {
            engine.insert(&row).unwrap();
        }
        assert!(engine.mups().is_empty());
        assert_eq!(engine.report().maximum_covered_level(), 2);
    }

    #[test]
    fn bad_rows_are_rejected_atomically() {
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        let before_len = engine.dataset().len();
        let err = engine
            .insert_batch(&[vec![0, 0, 0], vec![0, 9, 0]])
            .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        assert_eq!(engine.dataset().len(), before_len, "batch must be atomic");
        assert!(engine.insert(&[0, 0]).is_err(), "arity mismatch");
    }

    #[test]
    fn coverage_queries_are_cached_and_validated() {
        let mut engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        assert_eq!(engine.coverage(&[0, X, 1]).unwrap(), 3);
        assert_eq!(engine.coverage(&[0, X, 1]).unwrap(), 3);
        let (_, _, hits, _) = engine.cache_stats();
        assert!(hits >= 1);
        assert!(engine.coverage(&[0, X]).is_err());
        assert!(engine.coverage(&[0, 5, X]).is_err());
        assert!(engine.covered(&[X, X, X]).unwrap());
        assert!(!engine.covered(&[1, X, X]).unwrap());
    }

    #[test]
    fn enhance_plan_covers_lambda_frontier() {
        let engine = CoverageEngine::new(example1(), Threshold::Count(1)).unwrap();
        let (plan, copies) = engine.enhance(1).unwrap();
        assert_eq!(plan.combinations.len(), copies.len());
        for t in &plan.targets {
            assert!(plan.combinations.iter().any(|c| t.matches(c)));
        }
        assert!(engine.enhance(0).is_err());
        assert!(engine.enhance(4).is_err());
    }
}
