//! Serving front ends: request dispatch, stdin/stdout line serving, and the
//! TCP entry point behind [`serve`].
//!
//! Two TCP implementations sit behind one [`ServeOptions`] switch:
//!
//! * [`IoMode::Event`] (default) — the readiness-driven event loop in
//!   `crate::event`: one thread multiplexes every connection through a
//!   poller, coalescing inserts that arrive in the same tick — across
//!   connections — into single engine batches.
//! * [`IoMode::Blocking`] — the original thread-per-connection worker
//!   pool, kept for one release as `mithra serve --io blocking` so the
//!   two front ends can be diffed against each other.
//!
//! Both funnel into [`dispatch`], which never panics on malformed input —
//! every request line yields exactly one response line carrying the
//! request's `id` (when it sent one). Handlers run panic-*contained*: a
//! request that panics answers an `internal` error response (after
//! rebuilding the engine's derived state) instead of poisoning the shared
//! mutex and silently killing the front end.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use coverage_core::pattern::Pattern;
use coverage_data::Schema;
use coverage_index::CoverageBackend;

use crate::engine::CoverageEngine;
use crate::metrics::{OpClass, ServeMetrics};
use crate::oplog::{LoggedOp, OpLog, REPLICATE_BATCH_LIMIT};
use crate::protocol::{
    error_response, ok_head, parse_request, write_json_string, Envelope, ErrorCode, Request,
    RequestId, ServeError,
};
use crate::replica::ReplicationStatus;
use crate::snapshot::save_snapshot_anchored;
use crate::tenant::DatasetCounters;

/// Default number of worker threads for [`IoMode::Blocking`].
pub const DEFAULT_WORKERS: usize = 4;

/// Default bound on requests admitted per event-loop tick before new ones
/// are shed with an `overloaded` response.
pub const DEFAULT_MAX_PENDING: usize = 1024;

/// Which TCP front end [`serve`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// The readiness-driven event loop with cross-connection insert
    /// coalescing (default).
    #[default]
    Event,
    /// The legacy thread-per-connection worker pool (`--io blocking`),
    /// kept for one release as an equivalence baseline.
    Blocking,
}

/// Configuration for every serving front end, built fluently:
///
/// ```
/// use coverage_service::{IoMode, ServeOptions};
/// let options = ServeOptions::new()
///     .with_grow_schema(true)
///     .with_io(IoMode::Blocking)
///     .with_workers(8);
/// assert!(options.grow_schema());
/// ```
#[derive(Debug, Clone)]
pub struct ServeOptions {
    snapshot_path: Option<PathBuf>,
    grow_schema: bool,
    io: IoMode,
    workers: usize,
    max_pending: usize,
    oplog: Option<Arc<Mutex<OpLog>>>,
    read_only: bool,
    replication: Option<Arc<ReplicationStatus>>,
    datasets: Option<Arc<Vec<Arc<DatasetCounters>>>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            snapshot_path: None,
            grow_schema: false,
            io: IoMode::default(),
            workers: DEFAULT_WORKERS,
            max_pending: DEFAULT_MAX_PENDING,
            oplog: None,
            read_only: false,
            replication: None,
            datasets: None,
        }
    }
}

impl ServeOptions {
    /// Options with every knob at its default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the path backing the `snapshot`/`restore` ops; without one they
    /// answer a `no_snapshot` error.
    pub fn with_snapshot_path(mut self, path: Option<PathBuf>) -> Self {
        self.snapshot_path = path;
        self
    }

    /// Auto-register unknown value strings on `insert` as new dictionary
    /// values (`mithra serve --grow-schema`) instead of rejecting the row.
    /// The explicit `grow` op works regardless of this flag.
    pub fn with_grow_schema(mut self, grow_schema: bool) -> Self {
        self.grow_schema = grow_schema;
        self
    }

    /// Selects the TCP front end (`--io event|blocking`).
    pub fn with_io(mut self, io: IoMode) -> Self {
        self.io = io;
        self
    }

    /// Sets the worker-thread count for [`IoMode::Blocking`] (ignored by
    /// the event front end, which is single-threaded by design).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Bounds how many requests the event loop admits per tick before
    /// shedding with `overloaded` (`--max-pending`).
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending.max(1);
        self
    }

    /// Attaches a durable op log (`mithra serve --oplog PATH`): every
    /// mutating op that the engine accepts is appended before its success
    /// response is sent, and the `replicate` op serves the retained tail.
    pub fn with_oplog(mut self, oplog: Option<Arc<Mutex<OpLog>>>) -> Self {
        self.oplog = oplog;
        self
    }

    /// Marks this server a read-only follower (`mithra serve --follow`):
    /// `insert`/`delete`/`grow`/`restore` answer a `read_only` error while
    /// the replication thread applies the leader's log.
    pub fn with_read_only(mut self, read_only: bool) -> Self {
        self.read_only = read_only;
        self
    }

    /// Attaches follower replication progress, surfaced by the `stats` op
    /// as the `"replication"` section.
    pub fn with_replication(mut self, replication: Option<Arc<ReplicationStatus>>) -> Self {
        self.replication = replication;
        self
    }

    /// Attaches the multi-dataset counter directory, surfaced by the
    /// `stats` op as `io.datasets` (set up by [`crate::serve_tenants`]).
    pub fn with_dataset_directory(
        mut self,
        datasets: Option<Arc<Vec<Arc<DatasetCounters>>>>,
    ) -> Self {
        self.datasets = datasets;
        self
    }

    /// The configured snapshot path, if any.
    pub fn snapshot_path(&self) -> Option<&Path> {
        self.snapshot_path.as_deref()
    }

    /// Whether inserts grow dictionaries on unknown values.
    pub fn grow_schema(&self) -> bool {
        self.grow_schema
    }

    /// The selected TCP front end.
    pub fn io(&self) -> IoMode {
        self.io
    }

    /// Worker-thread count for the blocking front end.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Admission-control bound for the event front end.
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// The attached op log, if this server is a durable leader.
    pub fn oplog(&self) -> Option<&Arc<Mutex<OpLog>>> {
        self.oplog.as_ref()
    }

    /// Whether mutations are rejected with a `read_only` error.
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// Follower replication progress, if this server is a follower.
    pub fn replication(&self) -> Option<&Arc<ReplicationStatus>> {
        self.replication.as_ref()
    }

    /// The multi-dataset counter directory, if this server hosts several.
    pub fn dataset_directory(&self) -> Option<&Arc<Vec<Arc<DatasetCounters>>>> {
        self.datasets.as_ref()
    }

    /// The op-log position a snapshot taken *now* must anchor to: the last
    /// appended seq on a leader, the last applied seq on a follower, 0 on
    /// a standalone server (anchor 0 = "replay the whole log").
    pub(crate) fn snapshot_anchor(&self) -> u64 {
        if let Some(oplog) = &self.oplog {
            let log = match oplog.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            return log.last_seq();
        }
        if let Some(replication) = &self.replication {
            return replication.applied_seq();
        }
        0
    }
}

/// Appends one accepted mutation to the configured op log (no-op without
/// one). The append happens *after* the engine applied the op and *before*
/// the success response is sent: a crash in between loses only an op the
/// client never saw acknowledged. An append failure (disk full, log gone)
/// is answered as an `internal` error even though the engine applied —
/// the message says so, and the operator must intervene anyway.
pub(crate) fn log_mutation(
    options: &ServeOptions,
    op: impl FnOnce() -> LoggedOp,
) -> Result<(), ServeError> {
    let Some(oplog) = options.oplog() else {
        return Ok(());
    };
    let mut log = match oplog.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    // LINT-ALLOW(lock-across-blocking): holding the oplog lock across the append is what serializes the log
    log.append(op()).map(|_| ()).map_err(append_failed_error)
}

/// The `internal` error a mutation answers when the engine applied it but
/// the op-log append failed.
pub(crate) fn append_failed_error(e: impl std::fmt::Display) -> ServeError {
    ServeError::new(
        ErrorCode::Internal,
        format!("op applied but appending to the op log failed: {e}"),
    )
}

/// The `internal` error a mutation answers when its append was skipped
/// because an earlier append in the same batch failed: appending it anyway
/// would leave a hole in the log, and follower replay of a log with holes
/// can diverge from the leader (e.g. a logged delete of rows whose insert
/// fell in the hole).
pub(crate) fn append_skipped_error(cause: &str) -> ServeError {
    ServeError::new(
        ErrorCode::Internal,
        format!("op applied but not logged: an earlier op-log append failed: {cause}"),
    )
}

/// Records one accepted mutation for the op log. With `defer` the op is
/// staged (with the id to echo if its append later fails) for the caller
/// to append *after* the engine lock drops — the event loop's path, which
/// keeps blocking log I/O out of the engine-lock scope. Without it the op
/// is appended inline — the blocking front ends' path, where the engine
/// lock is what orders the log. No-op without a configured op log.
pub(crate) fn stage_mutation(
    options: &ServeOptions,
    defer: Option<&mut Vec<(Option<RequestId>, LoggedOp)>>,
    id: Option<&RequestId>,
    op: impl FnOnce() -> LoggedOp,
) -> Result<(), ServeError> {
    if options.oplog().is_none() {
        return Ok(());
    }
    match defer {
        Some(staged) => {
            staged.push((id.cloned(), op()));
            Ok(())
        }
        None => log_mutation(options, op),
    }
}

/// Flushes a `batch`-policy op log to disk (no-op without one, or under
/// `always`/`off`). The front ends call this once per tick (event) or once
/// per request (blocking/stdin, where `batch` degenerates to `always`).
pub(crate) fn sync_oplog_batch(options: &ServeOptions) {
    if let Some(oplog) = options.oplog() {
        let mut log = match oplog.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        // LINT-ALLOW(lock-across-blocking): the fsync must cover every append that precedes it; only the oplog lock is held
        let _ = log.sync_batch();
    }
}

/// The `unknown_dataset` error a single-dataset server answers when a
/// request carries `"dataset"` routing.
pub(crate) fn unknown_dataset_error(name: &str) -> ServeError {
    ServeError::new(
        ErrorCode::UnknownDataset,
        format!(
            "unknown dataset `{name}`: this server hosts a single unnamed dataset \
             (multi-dataset routing needs `mithra serve --datasets …`)"
        ),
    )
}

/// Encodes one protocol row (raw value names) into schema codes.
pub(crate) fn encode_row(schema: &Schema, raw: &[String]) -> Result<Vec<u8>, ServeError> {
    if raw.len() != schema.arity() {
        return Err(ServeError::new(
            ErrorCode::ArityMismatch,
            format!(
                "row has {} values, schema has {} attributes",
                raw.len(),
                schema.arity()
            ),
        ));
    }
    raw.iter()
        .enumerate()
        .map(|(i, v)| {
            schema
                .attribute(i)
                .code_of(v)
                .map_err(ServeError::from_data)
        })
        .collect()
}

/// Encodes protocol rows with **dictionary growth**: a value that resolves
/// against neither the dictionary nor the numeric fallback registers itself
/// as a new value on its attribute (the `--grow-schema` mode).
///
/// The whole batch is dry-run against a clone of the schema first — every
/// encoding and every growth is validated before the engine is touched —
/// so a rejected batch (bad arity, a dictionary at the cardinality
/// ceiling) registers nothing: insert stays atomic even while it grows
/// dictionaries.
pub(crate) fn encode_rows_growing<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    rows: &[Vec<String>],
) -> Result<Vec<Vec<u8>>, ServeError> {
    let mut schema = engine.dataset().schema().clone();
    let arity = schema.arity();
    for raw in rows {
        if raw.len() != arity {
            return Err(ServeError::new(
                ErrorCode::ArityMismatch,
                format!(
                    "row has {} values, schema has {arity} attributes",
                    raw.len()
                ),
            ));
        }
    }
    let mut growths: Vec<(usize, String)> = Vec::new();
    let mut coded = Vec::with_capacity(rows.len());
    for raw in rows {
        let mut row = Vec::with_capacity(arity);
        for (i, v) in raw.iter().enumerate() {
            let code = match schema.attribute(i).code_of(v) {
                Ok(code) => code,
                Err(_) => {
                    let code = schema.add_value(i, v).map_err(ServeError::from_data)?;
                    growths.push((i, v.clone()));
                    code
                }
            };
            row.push(code);
        }
        coded.push(row);
    }
    // Replay the validated growths on the engine: the clone started from
    // the engine's schema and accepted these exact operations in this exact
    // order, so the codes line up and none of them can fail.
    for (attribute, value) in growths {
        engine
            .grow_value(attribute, value)
            .map_err(ServeError::from_service)?;
    }
    Ok(coded)
}

/// Human-readable form of a pattern's deterministic elements, e.g.
/// `sex=f, race=black` (the CLI's decode format); `(anything)` for the root.
fn decode_pattern(schema: &Schema, pattern: &Pattern) -> String {
    let parts: Vec<String> = (0..schema.arity())
        .filter_map(|i| {
            pattern.get(i).map(|v| {
                format!(
                    "{}={}",
                    schema.attribute(i).name(),
                    schema.attribute(i).value_name(v)
                )
            })
        })
        .collect();
    if parts.is_empty() {
        "(anything)".into()
    } else {
        parts.join(", ")
    }
}

/// The success response for an `insert` of `inserted` rows leaving the
/// dataset at `rows` total. Shared by [`dispatch`] and the event loop's
/// coalesced path so the two front ends answer byte-for-byte identically.
pub(crate) fn insert_response(id: Option<&RequestId>, inserted: usize, rows: usize) -> String {
    let mut out = String::with_capacity(64);
    ok_head(&mut out, id);
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!(",\"op\":\"insert\",\"inserted\":{inserted},\"rows\":{rows}}}"),
    );
    out
}

/// The success response for a `delete` of `deleted` rows leaving the
/// dataset at `rows` total. Shared by [`dispatch`] and the event loop's
/// coalesced path so the two front ends answer byte-for-byte identically.
pub(crate) fn delete_response(id: Option<&RequestId>, deleted: usize, rows: usize) -> String {
    let mut out = String::with_capacity(64);
    ok_head(&mut out, id);
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!(",\"op\":\"delete\",\"deleted\":{deleted},\"rows\":{rows}}}"),
    );
    out
}

/// The `line_too_long` error answered for an oversized request line.
pub(crate) fn line_too_long_error() -> ServeError {
    ServeError::new(
        ErrorCode::LineTooLong,
        format!("request line exceeds {MAX_LINE_BYTES} bytes"),
    )
}

/// The metrics class a request's latency is recorded under.
pub(crate) fn op_class(request: &Request) -> OpClass {
    match request {
        Request::Insert { .. } => OpClass::Insert,
        Request::Delete { .. } => OpClass::Delete,
        _ => OpClass::Other,
    }
}

/// Executes one validated request against the engine, returning the full
/// response line (with `id` echoed) or a typed error. `defer`, when
/// given, receives accepted mutations instead of the op log — see
/// [`stage_mutation`].
pub(crate) fn dispatch<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    options: &ServeOptions,
    id: Option<&RequestId>,
    request: Request,
    metrics: Option<&ServeMetrics>,
    defer: Option<&mut Vec<(Option<RequestId>, LoggedOp)>>,
) -> Result<String, ServeError> {
    let no_snapshot = || {
        ServeError::new(
            ErrorCode::NoSnapshot,
            "no snapshot path configured (start with `mithra serve … --snapshot PATH`)",
        )
    };
    if options.read_only
        && matches!(
            request,
            Request::Insert { .. }
                | Request::Delete { .. }
                | Request::Grow { .. }
                | Request::Restore
        )
    {
        return Err(ServeError::new(
            ErrorCode::ReadOnly,
            "this server is a read-only follower; send mutations to the leader",
        ));
    }
    let mut out = String::with_capacity(128);
    ok_head(&mut out, id);
    match request {
        Request::Insert { rows } => {
            let coded: Vec<Vec<u8>> = if options.grow_schema {
                encode_rows_growing(engine, &rows)?
            } else {
                rows.iter()
                    .map(|r| encode_row(engine.dataset().schema(), r))
                    .collect::<Result<_, _>>()?
            };
            engine
                .insert_batch(&coded)
                .map_err(ServeError::from_service)?;
            stage_mutation(options, defer, id, || LoggedOp::Insert { rows })?;
            return Ok(insert_response(id, coded.len(), engine.dataset().len()));
        }
        Request::Delete { rows } => {
            let coded: Vec<Vec<u8>> = rows
                .iter()
                .map(|r| encode_row(engine.dataset().schema(), r))
                .collect::<Result<_, _>>()?;
            engine
                .remove_batch(&coded)
                .map_err(ServeError::from_service)?;
            stage_mutation(options, defer, id, || LoggedOp::Delete { rows })?;
            return Ok(delete_response(id, coded.len(), engine.dataset().len()));
        }
        Request::Grow { attribute, value } => {
            let index = engine
                .dataset()
                .schema()
                .index_of(&attribute)
                .map_err(ServeError::from_data)?;
            let code = engine
                .grow_value(index, &value)
                .map_err(ServeError::from_service)?;
            stage_mutation(options, defer, id, || LoggedOp::Grow {
                attribute: attribute.clone(),
                value: value.clone(),
            })?;
            out.push_str(",\"op\":\"grow\",\"attribute\":");
            write_json_string(&mut out, &attribute);
            out.push_str(",\"value\":");
            write_json_string(&mut out, &value);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"code\":{code},\"cardinality\":{},\"mups\":{}}}",
                    engine.dataset().schema().cardinality(index),
                    engine.mups().len()
                ),
            );
        }
        Request::Snapshot => {
            let path = options.snapshot_path().ok_or_else(no_snapshot)?;
            // The snapshot anchors the op-log position it captured; on a
            // leader the log is then truncated through that anchor —
            // recovery restores the snapshot and replays only the tail.
            let anchor = options.snapshot_anchor();
            save_snapshot_anchored(engine, path, anchor).map_err(ServeError::from_service)?;
            if let Some(oplog) = options.oplog() {
                let mut log = match oplog.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                // LINT-ALLOW(lock-across-blocking): truncation must be atomic w.r.t. concurrent appends; snapshots are rare and operator-initiated
                log.truncate_through(anchor).map_err(|e| {
                    ServeError::new(
                        ErrorCode::Internal,
                        format!("snapshot saved but truncating the op log failed: {e}"),
                    )
                })?;
            }
            out.push_str(",\"op\":\"snapshot\",\"path\":");
            write_json_string(&mut out, &path.display().to_string());
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"rows\":{},\"mups\":{},\"oplog_seq\":{anchor}}}",
                    engine.dataset().len(),
                    engine.mups().len()
                ),
            );
        }
        Request::Restore => {
            let path = options.snapshot_path().ok_or_else(no_snapshot)?;
            if options.oplog().is_some() {
                return Err(ServeError::new(
                    ErrorCode::BadRequest,
                    "restore is not supported while an op log is enabled (it would desync \
                     followers); restart the server to recover from the snapshot + log",
                ));
            }
            // The op restores *data*, not deployment config: the serving
            // process keeps its current shard layout (which already
            // reflects any CLI --shards override) rather than silently
            // adopting whatever layout the snapshot was taken under.
            let restored = crate::snapshot::load_snapshot_with_layout(path, Some(engine.shards()))
                .map_err(ServeError::from_service)?;
            // Same reasoning for the threshold: clients mid-conversation
            // have been quoting τ from the serving config; a snapshot
            // carrying a different threshold must be an explicit restart,
            // not a silent semantic change.
            if restored.threshold() != engine.threshold() {
                return Err(ServeError::new(
                    ErrorCode::ThresholdMismatch,
                    format!(
                        "snapshot threshold {:?} differs from the serving threshold {:?}; \
                         restart the server to change thresholds",
                        restored.threshold(),
                        engine.threshold()
                    ),
                ));
            }
            *engine = restored;
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"op\":\"restore\",\"rows\":{},\"tau\":{},\"mups\":{}}}",
                    engine.dataset().len(),
                    engine.tau(),
                    engine.mups().len()
                ),
            );
        }
        Request::Mups { limit } => {
            let total = engine.mups().len();
            let shown = limit.unwrap_or(total).min(total);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"op\":\"mups\",\"count\":{},\"tau\":{},\"mups\":[",
                    total,
                    engine.tau()
                ),
            );
            for (i, mup) in engine.mups().iter().take(shown).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, &mup.to_string());
            }
            out.push_str("],\"decoded\":[");
            let schema = engine.dataset().schema();
            for (i, mup) in engine.mups().iter().take(shown).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, &decode_pattern(schema, mup));
            }
            out.push_str("]}");
        }
        Request::Coverage { pattern } => {
            let p = Pattern::parse(&pattern)
                .map_err(|e| ServeError::new(ErrorCode::BadPattern, e.to_string()))?;
            // A structurally-valid pattern that doesn't fit the schema
            // (wrong arity, out-of-range code) is still a *pattern*
            // problem on this op, not a generic bad request.
            let coverage = engine.coverage(p.codes()).map_err(|e| match e {
                crate::ServiceError::BadRequest(msg) => ServeError::new(ErrorCode::BadPattern, msg),
                other => ServeError::from_service(other),
            })?;
            let covered = coverage >= engine.tau();
            out.push_str(",\"op\":\"coverage\",\"pattern\":");
            write_json_string(&mut out, &pattern);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"coverage\":{coverage},\"covered\":{covered},\"tau\":{}}}",
                    engine.tau()
                ),
            );
        }
        Request::Enhance { lambda } => {
            let (plan, copies) = engine.enhance(lambda).map_err(ServeError::from_service)?;
            let schema = engine.dataset().schema();
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"op\":\"enhance\",\"lambda\":{lambda},\"targets\":{},\"collect\":[",
                    plan.input_size()
                ),
            );
            for (i, (combo, n)) in plan.combinations.iter().zip(&copies).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"values\":[");
                for (j, &v) in combo.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    write_json_string(&mut out, &schema.attribute(j).value_name(v));
                }
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("],\"copies\":{n}}}"));
            }
            out.push_str("]}");
        }
        Request::Replicate { from_seq } => {
            let Some(oplog) = options.oplog() else {
                return Err(ServeError::new(
                    ErrorCode::BadRequest,
                    "this server has no op log to replicate from (start the leader with \
                     `mithra serve … --oplog PATH`)",
                ));
            };
            let log = match oplog.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            // Seqs start at 1; `from:0` means "from the beginning".
            let from = from_seq.max(1);
            let entries = log
                .entries_from(from, REPLICATE_BATCH_LIMIT)
                .map_err(|oldest| {
                    ServeError::new(
                        ErrorCode::BadRequest,
                        format!(
                            "seq {from} predates the retained op log (oldest retained is \
                         {oldest}); restart the follower from a fresh snapshot"
                        ),
                    )
                })?;
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"op\":\"replicate\",\"from\":{from},\"last_seq\":{},\"count\":{},\
                     \"entries\":[",
                    log.last_seq(),
                    entries.len(),
                ),
            );
            for (i, entry) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&entry.to_line());
            }
            let next = entries.last().map_or(from, |e| e.seq + 1);
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!("],\"next\":{next}}}"));
        }
        Request::Stats => {
            let report = engine.report();
            let stats = engine.stats();
            let (cache_len, cache_cap, hits, misses, invalidated) = engine.cache_stats();
            let shard_layout = engine.shard_layout();
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    concat!(
                        ",\"op\":\"stats\",\"rows\":{},\"attributes\":{},",
                        "\"tau\":{},\"mups\":{},\"max_covered_level\":{},",
                        "\"inserts\":{},\"batches\":{},\"deletes\":{},\"delete_batches\":{},",
                        "\"mups_retired\":{},\"mups_discovered\":{},\"full_recomputes\":{},",
                        "\"cache\":{{\"len\":{},\"capacity\":{},\"hits\":{},\"misses\":{},",
                        "\"invalidated\":{}}},\"dictionaries\":["
                    ),
                    engine.dataset().len(),
                    engine.dataset().arity(),
                    engine.tau(),
                    report.mup_count(),
                    report.maximum_covered_level(),
                    stats.inserts,
                    stats.batches,
                    stats.deletes,
                    stats.delete_batches,
                    stats.mups_retired,
                    stats.mups_discovered,
                    stats.full_recomputes,
                    cache_len,
                    cache_cap,
                    hits,
                    misses,
                    invalidated,
                ),
            );
            // Per-attribute dictionary sizes plus how much of each is growth
            // since load — the signal that the served schema has drifted
            // from the CSV's.
            let schema = engine.dataset().schema();
            for (i, (attr, grown)) in schema
                .attributes()
                .iter()
                .zip(engine.dictionary_growth())
                .enumerate()
            {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                write_json_string(&mut out, attr.name());
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!(
                        ",\"cardinality\":{},\"grown\":{grown}}}",
                        attr.cardinality()
                    ),
                );
            }
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!("],\"shards\":{{\"count\":{},\"rows\":[", shard_layout.len()),
            );
            // Per-shard row counts, so operators can see routing skew.
            for (i, rows) in shard_layout.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{rows}"));
            }
            out.push_str("]}");
            // Per-backend memory: index bytes, bytes/row, and the
            // compressed-container histogram (all-zero for dense), plus the
            // intersection-kernel code path the host runs.
            let memory = engine.oracle().memory_stats();
            let rows = engine.dataset().len();
            let bytes_per_row = if rows == 0 {
                0.0
            } else {
                memory.bytes as f64 / rows as f64
            };
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    concat!(
                        ",\"backend\":{{\"name\":\"{}\",\"bytes\":{},",
                        "\"bytes_per_row\":{:.3},\"containers\":{{\"array\":{},",
                        "\"bitmap\":{},\"runs\":{}}},\"kernels\":"
                    ),
                    engine.oracle().backend_name(),
                    memory.bytes,
                    bytes_per_row,
                    memory.array_containers,
                    memory.bitmap_containers,
                    memory.run_containers,
                ),
            );
            write_json_string(&mut out, coverage_index::kernel_features());
            out.push('}');
            // TCP front ends append their I/O counters + latency
            // histograms; the stdin front end has none to report.
            if let Some(metrics) = metrics {
                out.push_str(",\"io\":");
                metrics.write_json_fields(&mut out);
                if let Some(datasets) = options.dataset_directory() {
                    out.push_str(",\"datasets\":[");
                    for (i, counters) in datasets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"name\":");
                        write_json_string(&mut out, counters.name());
                        let _ = std::fmt::Write::write_fmt(
                            &mut out,
                            format_args!(",\"requests\":{}}}", counters.requests()),
                        );
                    }
                    out.push(']');
                }
                out.push('}');
            }
            write_replication_section(options, &mut out);
            out.push('}');
        }
    }
    Ok(out)
}

/// Appends the `stats` response's `"replication"` section: op-log position
/// and durability counters on a leader, applied/leader seqs and lag on a
/// follower. Standalone servers (neither) emit nothing.
fn write_replication_section(options: &ServeOptions, out: &mut String) {
    use std::fmt::Write as _;
    if let Some(oplog) = options.oplog() {
        let log = match oplog.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = write!(
            out,
            ",\"replication\":{{\"role\":\"leader\",\"last_seq\":{},\"retained\":{},\
             \"appends\":{},\"fsyncs\":{},\"sync\":\"{}\"}}",
            log.last_seq(),
            log.len(),
            log.appends(),
            log.fsyncs(),
            log.sync_policy().as_str(),
        );
    } else if let Some(status) = options.replication() {
        let applied = status.applied_seq();
        let leader = status.leader_seq();
        out.push_str(",\"replication\":{\"role\":\"follower\",\"source\":");
        write_json_string(out, status.source());
        let _ = write!(
            out,
            ",\"applied_seq\":{applied},\"leader_seq\":{leader},\"lag\":{},\
             \"entries_applied\":{},\"rounds\":{},\"errors\":{}}}",
            leader.saturating_sub(applied),
            status.entries_applied(),
            status.rounds(),
            status.errors(),
        );
    }
}

/// Handles one request line under the given [`ServeOptions`], returning
/// exactly one response line (without the trailing newline). Never panics
/// on malformed input. This is the single in-process entry point — the
/// stdin and TCP front ends answer identically to it (TCP `stats` adds an
/// `"io"` section).
pub fn handle_line<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    options: &ServeOptions,
    line: &str,
) -> String {
    match parse_request(line) {
        Ok(Envelope {
            id,
            dataset,
            request,
        }) => {
            if let Some(name) = dataset {
                return error_response(id.as_ref(), &unknown_dataset_error(&name));
            }
            match dispatch(engine, options, id.as_ref(), request, None, None) {
                Ok(response) => response,
                Err(error) => error_response(id.as_ref(), &error),
            }
        }
        Err(failure) => error_response(failure.id.as_ref(), &failure.error),
    }
}

/// Upper bound on one request line. Longer lines answer an error response
/// and are discarded up to the next newline — without this cap a single
/// newline-free stream would buffer unboundedly and OOM the whole server.
pub const MAX_LINE_BYTES: usize = 1 << 20;

enum LineRead {
    Line(String),
    TooLong,
    Eof,
}

/// Reads one newline-terminated request line, never buffering more than
/// [`MAX_LINE_BYTES`] of it. Invalid UTF-8 is replaced lossily (the JSON
/// layer then rejects it with a normal error response).
fn read_request_line(reader: &mut impl BufRead) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let n = io::Read::take(&mut *reader, MAX_LINE_BYTES as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    let terminated = buf.last() == Some(&b'\n');
    if terminated {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    if buf.len() <= MAX_LINE_BYTES && (terminated || n <= MAX_LINE_BYTES) {
        // Unterminated final lines (EOF without newline) are served too.
        return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
    }
    // Cap hit mid-line: discard the rest in bounded chunks to resync.
    loop {
        buf.clear();
        let m = io::Read::take(&mut *reader, 64 * 1024).read_until(b'\n', &mut buf)?;
        if m == 0 || buf.last() == Some(&b'\n') {
            return Ok(LineRead::TooLong);
        }
    }
}

/// The shared request/response loop: one response line per request line,
/// oversized lines answered with an error and skipped, until EOF.
fn serve_loop(
    mut input: impl BufRead,
    mut output: impl Write,
    mut respond: impl FnMut(&str) -> String,
) -> io::Result<()> {
    loop {
        let response = match read_request_line(&mut input)? {
            LineRead::Eof => return Ok(()),
            LineRead::TooLong => error_response(None, &line_too_long_error()),
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                respond(&line)
            }
        };
        writeln!(output, "{response}")?;
        output.flush()?;
    }
}

/// Serves newline-delimited requests from `input` to `output` until EOF
/// (the `mithra serve` stdin/stdout mode) under the given [`ServeOptions`].
/// Blank lines are skipped.
pub fn serve_lines<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    options: &ServeOptions,
    input: impl BufRead,
    output: impl Write,
) -> io::Result<()> {
    serve_loop(input, output, |line| {
        let response = handle_line(engine, options, line);
        // No tick boundary here: a `batch`-policy op log syncs per request
        // (i.e. degenerates to `always`).
        sync_oplog_batch(options);
        response
    })
}

/// How long a TCP connection may sit idle between requests before it is
/// closed. Blocking workers come from a small fixed pool — without this
/// bound a handful of silent clients would park every worker in a blocking
/// read and starve all queued connections. The event front end applies the
/// same bound for symmetry (and to shed dead clients' buffers).
pub const IDLE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(300);

/// Runs `action` against the shared engine with panics **contained**: the
/// closure executes inside `catch_unwind` while the guard is held, so a
/// panicking handler unwinds *within* the lock scope and the mutex is
/// released cleanly instead of being poisoned — the failure stays scoped to
/// one request rather than cascading through the front end.
///
/// Two layers of defense:
///
/// * A caught panic answers an `internal` error (via `on_failure`) after
///   [`CoverageEngine::rebuild`] re-derives the engine's oracle/MUPs/cache
///   from the dataset (the panic may have torn a mid-update invariant).
/// * If the mutex is *already* poisoned (a panic that predates this guard,
///   e.g. an external lock holder), the poison is cleared, the engine
///   rebuilt, and serving resumes — the front end never wedges permanently.
///
/// Generic over the result so the event loop can run a whole batch drain
/// under one containment scope: `on_failure` turns the failure into
/// whatever `action` would have produced (e.g. error responses for every
/// drained request).
pub(crate) fn with_engine_contained<B: CoverageBackend, T>(
    engine: &Arc<Mutex<CoverageEngine<B>>>,
    on_failure: impl FnOnce(ServeError) -> T,
    action: impl FnOnce(&mut CoverageEngine<B>) -> T,
) -> T {
    let internal = |message: String| ServeError::new(ErrorCode::Internal, message);
    let mut guard = match engine.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            engine.clear_poison();
            let mut guard = poisoned.into_inner();
            if let Err(e) = guard.rebuild() {
                return on_failure(internal(format!("engine rebuild after panic failed: {e}")));
            }
            guard
        }
    };
    match std::panic::catch_unwind(AssertUnwindSafe(|| action(&mut guard))) {
        Ok(result) => result,
        Err(_) => match guard.rebuild() {
            Ok(()) => on_failure(internal(
                "internal error: request handler panicked; engine rebuilt".into(),
            )),
            Err(e) => on_failure(internal(format!("engine rebuild after panic failed: {e}"))),
        },
    }
}

/// Answers one parsed-or-failed request line against the shared engine,
/// recording latency + batching counters. Shared by the blocking workers;
/// the event loop has its own batched equivalent.
fn respond_contained<B: CoverageBackend>(
    engine: &Arc<Mutex<CoverageEngine<B>>>,
    options: &ServeOptions,
    metrics: &ServeMetrics,
    line: &str,
) -> String {
    let start = Instant::now();
    // Parse needs no engine state — keep it outside the lock so one
    // connection's slow/hostile request text cannot stall the others.
    let (op, response) = match parse_request(line) {
        Err(failure) => (
            OpClass::Other,
            error_response(failure.id.as_ref(), &failure.error),
        ),
        Ok(Envelope {
            id,
            dataset: Some(name),
            ..
        }) => (
            OpClass::Other,
            error_response(id.as_ref(), &unknown_dataset_error(&name)),
        ),
        Ok(Envelope {
            id,
            dataset: None,
            request,
        }) => {
            let op = op_class(&request);
            let response = with_engine_contained(
                engine,
                |error| error_response(id.as_ref(), &error),
                // LINT-ALLOW(lock-across-blocking): blocking workers log inline — the engine lock is what orders the op log here
                |engine| match dispatch(engine, options, id.as_ref(), request, Some(metrics), None)
                {
                    Ok(response) => response,
                    Err(error) => error_response(id.as_ref(), &error),
                },
            );
            sync_oplog_batch(options);
            (op, response)
        }
    };
    if response.starts_with("{\"ok\":true") {
        // Each blocking insert/delete is its own engine batch — the
        // coalescing counters make the contrast with the event loop
        // measurable.
        match op {
            OpClass::Insert => {
                ServeMetrics::add(&metrics.insert_requests, 1);
                ServeMetrics::add(&metrics.insert_engine_batches, 1);
            }
            OpClass::Delete => {
                ServeMetrics::add(&metrics.delete_requests, 1);
                ServeMetrics::add(&metrics.delete_engine_batches, 1);
            }
            OpClass::Other => {}
        }
    }
    metrics.record(op, start.elapsed().as_nanos() as u64);
    response
}

fn serve_connection<B: CoverageBackend>(
    engine: &Arc<Mutex<CoverageEngine<B>>>,
    options: &ServeOptions,
    metrics: &ServeMetrics,
    stream: TcpStream,
) -> io::Result<()> {
    stream.set_read_timeout(Some(IDLE_TIMEOUT))?;
    let reader = BufReader::new(stream.try_clone()?);
    serve_loop(reader, stream, |line| {
        respond_contained(engine, options, metrics, line)
    })
}

/// The [`IoMode::Blocking`] front end: a fixed pool of `options.workers()`
/// threads (thread-per-connection; up to `2 × workers` connections queue
/// when all workers are busy; beyond that new connections are closed
/// immediately rather than pinning file descriptors in an unbounded
/// queue). Runs until the listener fails; individual connection errors are
/// dropped, and a panicking request handler costs one error response —
/// never a worker thread or the engine mutex.
fn serve_blocking<B: CoverageBackend>(
    engine: Arc<Mutex<CoverageEngine<B>>>,
    options: ServeOptions,
    listener: TcpListener,
) -> io::Result<()> {
    let workers = options.workers();
    let metrics = Arc::new(ServeMetrics::default());
    let (sender, receiver) = mpsc::sync_channel::<TcpStream>(workers * 2);
    let receiver = Arc::new(Mutex::new(receiver));
    let mut pool = Vec::new();
    for _ in 0..workers {
        let receiver = Arc::clone(&receiver);
        let engine = Arc::clone(&engine);
        let options = options.clone();
        let metrics = Arc::clone(&metrics);
        pool.push(thread::spawn(move || loop {
            // recv() itself cannot panic while holding the lock, but recover
            // from poison anyway: a wedged queue mutex must never strand the
            // listener accepting connections nobody will serve.
            let next = receiver
                .lock()
                .unwrap_or_else(|poisoned| {
                    receiver.clear_poison();
                    poisoned.into_inner()
                })
                .recv();
            match next {
                Ok(stream) => {
                    // A dropped connection only ends that conversation, and
                    // an I/O-layer panic only ends this iteration — the
                    // worker survives to take the next connection.
                    let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let _ = serve_connection(&engine, &options, &metrics, stream);
                    }));
                }
                Err(_) => break, // listener gone — shut the worker down
            }
        }));
    }
    let mut accept_failures = 0u32;
    let mut result = Ok(());
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                accept_failures = 0;
                ServeMetrics::add(&metrics.connections, 1);
                match sender.try_send(stream) {
                    Ok(()) => {}
                    // Saturated: shed load by closing the new connection now
                    // (dropping the stream) instead of letting queued sockets
                    // accumulate fds with no idle timer running.
                    Err(mpsc::TrySendError::Full(stream)) => drop(stream),
                    Err(mpsc::TrySendError::Disconnected(_)) => break,
                }
            }
            // Transient accept failures (ECONNABORTED, EMFILE under fd
            // pressure) recur immediately; back off briefly so they cannot
            // busy-spin the accept thread while workers hold the fds that
            // need to drain — but a listener that stays broken must
            // surface as an error, not an idle zombie process.
            Err(e) => {
                accept_failures += 1;
                if accept_failures >= 100 {
                    result = Err(e);
                    break;
                }
                thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
    drop(sender);
    for worker in pool {
        let _ = worker.join();
    }
    result
}

/// Serves the protocol over TCP until the listener fails, on the front end
/// selected by `options.io()` — the single entry point for both the
/// event-driven and the blocking implementation.
pub fn serve<B: CoverageBackend>(
    engine: Arc<Mutex<CoverageEngine<B>>>,
    options: ServeOptions,
    listener: TcpListener,
) -> io::Result<()> {
    match options.io() {
        IoMode::Event => crate::event::serve_event(engine, options, listener),
        IoMode::Blocking => serve_blocking(engine, options, listener),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Json;
    use coverage_core::Threshold;
    use coverage_data::{Attribute, Dataset};

    /// A dictionary-carrying dataset: sex ∈ {m,f}, race ∈ {white,black,asian}.
    fn engine() -> CoverageEngine {
        let schema = Schema::new(vec![
            Attribute::with_values("sex", ["m", "f"]).unwrap(),
            Attribute::with_values("race", ["white", "black", "asian"]).unwrap(),
        ])
        .unwrap();
        let ds =
            Dataset::from_rows(schema, &[vec![0, 0], vec![0, 1], vec![1, 0], vec![0, 0]]).unwrap();
        CoverageEngine::new(ds, Threshold::Count(1)).unwrap()
    }

    fn plain(engine: &mut CoverageEngine, line: &str) -> String {
        handle_line(engine, &ServeOptions::default(), line)
    }

    fn ok<B: CoverageBackend>(engine: &mut CoverageEngine<B>, line: &str) -> Json {
        let response = handle_line(engine, &ServeOptions::default(), line);
        let doc = Json::parse(&response).expect("response is valid JSON");
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "request `{line}` failed: {response}"
        );
        doc
    }

    #[test]
    fn insert_by_value_name_and_by_code() {
        let mut engine = engine();
        // MUPs at start: f|black (11), X|asian (X2) per τ=1.
        let doc = ok(&mut engine, r#"{"op":"insert","row":["f","black"]}"#);
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(5));
        // Numeric codes also work ("1" = f, "2" = asian).
        let doc = ok(
            &mut engine,
            r#"{"op":"insert","rows":[["1","2"],["m","asian"]]}"#,
        );
        assert_eq!(doc.get("inserted").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn responses_echo_request_ids() {
        let mut engine = engine();
        let response = plain(&mut engine, r#"{"op":"insert","id":7,"row":["f","black"]}"#);
        assert_eq!(
            response,
            "{\"ok\":true,\"id\":7,\"op\":\"insert\",\"inserted\":1,\"rows\":5}"
        );
        let response = plain(&mut engine, r#"{"id":"q-1","op":"mups","limit":0}"#);
        assert!(
            response.starts_with("{\"ok\":true,\"id\":\"q-1\","),
            "{response}"
        );
        // Errors echo the id too, with a machine code.
        let response = plain(&mut engine, r#"{"op":"coverage","id":3,"pattern":"9X"}"#);
        assert!(
            response.starts_with("{\"ok\":false,\"id\":3,\"code\":\""),
            "{response}"
        );
        // Legacy id-less requests answer exactly as before (no id field).
        let response = plain(&mut engine, r#"{"op":"mups","limit":0}"#);
        assert!(!response.contains("\"id\""), "{response}");
    }

    #[test]
    fn error_codes_classify_request_failures() {
        let mut engine = engine();
        for (line, code) in [
            ("nonsense", "parse"),
            (r#"{"op":"frobnicate"}"#, "unknown_op"),
            (r#"{"op":"insert","row":["f"]}"#, "arity_mismatch"),
            (r#"{"op":"insert","row":["f","martian"]}"#, "unknown_value"),
            (r#"{"op":"coverage","pattern":"XXX"}"#, "bad_pattern"),
            (r#"{"op":"coverage","pattern":"=Y"}"#, "bad_pattern"),
            (
                r#"{"op":"grow","attr":"height","value":"tall"}"#,
                "unknown_attribute",
            ),
            (
                r#"{"op":"grow","attr":"race","value":"white"}"#,
                "duplicate_value",
            ),
            (
                r#"{"op":"delete","rows":[["f","white"],["f","white"]]}"#,
                "row_not_found",
            ),
            (r#"{"op":"enhance","lambda":9}"#, "bad_request"),
            (r#"{"op":"snapshot"}"#, "no_snapshot"),
        ] {
            let response = plain(&mut engine, line);
            let doc = Json::parse(&response).expect("error response is valid JSON");
            assert_eq!(
                doc.get("ok").and_then(Json::as_bool),
                Some(false),
                "`{line}` should fail: {response}"
            );
            assert_eq!(
                doc.get("code").and_then(Json::as_str),
                Some(code),
                "`{line}` gave {response}"
            );
        }
    }

    #[test]
    fn mups_lists_and_limits() {
        let mut engine = engine();
        let doc = ok(&mut engine, r#"{"op":"mups"}"#);
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("mups").unwrap().as_array().unwrap().len(), 2);
        let doc = ok(&mut engine, r#"{"op":"mups","limit":1}"#);
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("mups").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn mups_decode_to_value_names() {
        let mut engine = engine();
        let doc = ok(&mut engine, r#"{"op":"mups"}"#);
        let decoded: Vec<&str> = doc
            .get("decoded")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert_eq!(decoded, vec!["sex=f, race=black", "race=asian"]);
    }

    #[test]
    fn coverage_roundtrip() {
        let mut engine = engine();
        let doc = ok(&mut engine, r#"{"op":"coverage","pattern":"0X"}"#);
        assert_eq!(doc.get("coverage").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("covered").and_then(Json::as_bool), Some(true));
        let doc = ok(&mut engine, r#"{"op":"coverage","pattern":"12"}"#);
        assert_eq!(doc.get("coverage").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("covered").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn enhance_decodes_value_names() {
        let mut engine = engine();
        let doc = ok(&mut engine, r#"{"op":"enhance","lambda":2}"#);
        let collect = doc.get("collect").unwrap().as_array().unwrap();
        assert!(!collect.is_empty());
        for item in collect {
            let values = item.get("values").unwrap().as_array().unwrap();
            assert_eq!(values.len(), 2);
            assert!(item.get("copies").and_then(Json::as_u64).is_some());
        }
    }

    #[test]
    fn stats_reports_counters() {
        let mut engine = engine();
        let _ = ok(&mut engine, r#"{"op":"insert","row":["f","black"]}"#);
        let doc = ok(&mut engine, r#"{"op":"stats"}"#);
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(5));
        assert_eq!(doc.get("attributes").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("inserts").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("deletes").and_then(Json::as_u64), Some(0));
        assert!(doc.get("cache").unwrap().get("capacity").is_some());
        assert!(
            doc.get("cache").unwrap().get("invalidated").is_some(),
            "invalidation churn must be visible to operators"
        );
        let shards = doc.get("shards").expect("stats must report shard layout");
        assert_eq!(shards.get("count").and_then(Json::as_u64), Some(1));
        let rows: Vec<u64> = shards
            .get("rows")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(rows, vec![5]);
        // The stdin front end has no I/O metrics; the section appears only
        // on the TCP front ends.
        assert!(doc.get("io").is_none());
        // Per-backend memory accounting: dense reports its vector bytes and
        // an all-zero container histogram.
        let backend = doc.get("backend").expect("stats must report backend");
        assert_eq!(backend.get("name").and_then(Json::as_str), Some("dense"));
        assert!(backend.get("bytes").and_then(Json::as_u64).unwrap() > 0);
        assert!(backend.get("bytes_per_row").is_some());
        let containers = backend.get("containers").unwrap();
        assert_eq!(containers.get("array").and_then(Json::as_u64), Some(0));
        assert!(backend.get("kernels").and_then(Json::as_str).is_some());
    }

    #[test]
    fn stats_report_compressed_backend_memory() {
        use coverage_index::{CompressedOracle, ShardedOracle};
        let ds = coverage_data::generators::airbnb_like(500, 4, 3).unwrap();
        let mut engine = CoverageEngine::<ShardedOracle<CompressedOracle>>::with_shards(
            ds,
            Threshold::Count(1),
            2,
        )
        .unwrap();
        let doc = ok(&mut engine, r#"{"op":"stats"}"#);
        let backend = doc.get("backend").unwrap();
        assert_eq!(
            backend.get("name").and_then(Json::as_str),
            Some("compressed")
        );
        assert!(backend.get("bytes").and_then(Json::as_u64).unwrap() > 0);
        let containers = backend.get("containers").unwrap();
        assert!(containers.get("array").and_then(Json::as_u64).unwrap() > 0);
    }

    #[test]
    fn stats_io_section_appears_with_metrics() {
        let mut engine = engine();
        let metrics = ServeMetrics::default();
        metrics.record(OpClass::Insert, 1_000);
        let response = dispatch(
            &mut engine,
            &ServeOptions::default(),
            None,
            Request::Stats,
            Some(&metrics),
            None,
        )
        .unwrap();
        let doc = Json::parse(&response).unwrap();
        let io = doc.get("io").expect("io section present");
        assert_eq!(io.get("requests").and_then(Json::as_u64), Some(1));
        assert!(io.get("latency_ns").unwrap().get("insert").is_some());
    }

    #[test]
    fn stats_report_per_shard_rows_for_sharded_engines() {
        let schema = Schema::new(vec![
            Attribute::with_values("sex", ["m", "f"]).unwrap(),
            Attribute::with_values("race", ["white", "black", "asian"]).unwrap(),
        ])
        .unwrap();
        let ds = Dataset::from_rows(
            schema,
            &[vec![0, 0], vec![0, 1], vec![1, 0], vec![0, 0], vec![1, 2]],
        )
        .unwrap();
        let mut engine = crate::ShardedCoverageEngine::with_shards(ds, Threshold::Count(1), 2)
            .expect("sharded engine");
        let _ = ok(&mut engine, r#"{"op":"insert","row":["f","black"]}"#);
        let doc = ok(&mut engine, r#"{"op":"stats"}"#);
        let shards = doc.get("shards").unwrap();
        assert_eq!(shards.get("count").and_then(Json::as_u64), Some(2));
        let rows: Vec<u64> = shards
            .get("rows")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.iter().sum::<u64>(), 6, "per-shard rows must sum to n");
    }

    #[test]
    fn grow_op_registers_a_value_and_mints_its_mup() {
        let mut engine = engine();
        let doc = ok(
            &mut engine,
            r#"{"op":"grow","attr":"race","value":"hispanic"}"#,
        );
        assert_eq!(doc.get("code").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("cardinality").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.get("attribute").and_then(Json::as_str), Some("race"));
        // The zero-coverage level-1 pattern joined the frontier…
        let doc = ok(&mut engine, r#"{"op":"coverage","pattern":"X3"}"#);
        assert_eq!(doc.get("coverage").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("covered").and_then(Json::as_bool), Some(false));
        // …and inserting the value by name retires it.
        let doc = ok(&mut engine, r#"{"op":"insert","row":["m","hispanic"]}"#);
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(5));
        let doc = ok(&mut engine, r#"{"op":"coverage","pattern":"X3"}"#);
        assert_eq!(doc.get("covered").and_then(Json::as_bool), Some(true));
        // Unknown attributes and duplicate values answer errors.
        for line in [
            r#"{"op":"grow","attr":"height","value":"tall"}"#,
            r#"{"op":"grow","attr":"race","value":"hispanic"}"#,
        ] {
            let response = plain(&mut engine, line);
            assert!(response.contains("\"ok\":false"), "{response}");
        }
    }

    #[test]
    fn grow_schema_mode_auto_registers_unknown_values() {
        let mut engine = engine();
        let options = ServeOptions::new().with_grow_schema(true);
        // Without the flag the unseen value is rejected (the original bug's
        // guard behavior, still the default)…
        let strict = plain(&mut engine, r#"{"op":"insert","row":["f","hispanic"]}"#);
        assert!(strict.contains("\"ok\":false"), "{strict}");
        // …with it, the insert grows the dictionary and lands the row.
        let response = handle_line(
            &mut engine,
            &options,
            r#"{"op":"insert","rows":[["f","hispanic"],["nonbinary","hispanic"]]}"#,
        );
        let doc = Json::parse(&response).unwrap();
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
        assert_eq!(doc.get("inserted").and_then(Json::as_u64), Some(2));
        let schema_cards = engine.dataset().schema().cardinalities();
        assert_eq!(schema_cards, vec![3, 4], "both dictionaries grew");
        assert_eq!(engine.dictionary_growth(), &[1, 1]);
        assert_eq!(engine.coverage(&[2, 3]).unwrap(), 1);
        // Arity is validated before any growth: a malformed batch with a
        // fresh value must not register it.
        let response = handle_line(
            &mut engine,
            &options,
            r#"{"op":"insert","rows":[["f","martian","extra"]]}"#,
        );
        assert!(response.contains("\"ok\":false"), "{response}");
        assert_eq!(engine.dataset().schema().cardinalities(), vec![3, 4]);
    }

    #[test]
    fn grow_schema_batches_are_atomic_under_growth_failure() {
        use coverage_data::MAX_CARDINALITY;
        // An attribute one value short of the ceiling: the first row's new
        // value fits, the second's does not — the whole batch must be
        // rejected with nothing registered and no MUP minted.
        let schema = Schema::new(vec![coverage_data::Attribute::new(
            "big",
            MAX_CARDINALITY - 1,
        )
        .unwrap()])
        .unwrap();
        let ds = Dataset::from_rows(schema, &[vec![0]]).unwrap();
        let mut engine = CoverageEngine::new(ds, Threshold::Count(1)).unwrap();
        let options = ServeOptions::new().with_grow_schema(true);
        let mups_before = engine.mups().len();
        let response = handle_line(
            &mut engine,
            &options,
            r#"{"op":"insert","rows":[["newA"],["newB"]]}"#,
        );
        assert!(response.contains("\"ok\":false"), "{response}");
        assert_eq!(
            engine.dataset().schema().cardinality(0) as usize,
            MAX_CARDINALITY - 1,
            "failed batch must not grow the dictionary"
        );
        assert_eq!(engine.dictionary_growth(), &[0]);
        assert_eq!(engine.mups().len(), mups_before);
        assert_eq!(engine.dataset().len(), 1);
        // A batch that fits entirely still grows and inserts.
        let response = handle_line(
            &mut engine,
            &options,
            r#"{"op":"insert","rows":[["newA"],["newA"]]}"#,
        );
        assert!(response.contains("\"ok\":true"), "{response}");
        assert_eq!(engine.dictionary_growth(), &[1]);
        assert_eq!(engine.dataset().len(), 3);
    }

    #[test]
    fn stats_report_per_attribute_dictionaries() {
        let mut engine = engine();
        let _ = ok(&mut engine, r#"{"op":"grow","attr":"sex","value":"x"}"#);
        let doc = ok(&mut engine, r#"{"op":"stats"}"#);
        let dicts = doc
            .get("dictionaries")
            .expect("stats must report dictionaries")
            .as_array()
            .unwrap();
        assert_eq!(dicts.len(), 2);
        assert_eq!(dicts[0].get("name").and_then(Json::as_str), Some("sex"));
        assert_eq!(dicts[0].get("cardinality").and_then(Json::as_u64), Some(3));
        assert_eq!(dicts[0].get("grown").and_then(Json::as_u64), Some(1));
        assert_eq!(dicts[1].get("name").and_then(Json::as_str), Some("race"));
        assert_eq!(dicts[1].get("cardinality").and_then(Json::as_u64), Some(3));
        assert_eq!(dicts[1].get("grown").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn delete_op_removes_rows_and_reports() {
        let mut engine = engine();
        let doc = ok(&mut engine, r#"{"op":"delete","row":["m","white"]}"#);
        assert_eq!(doc.get("deleted").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(3));
        // Numeric codes work, as for insert.
        let doc = ok(
            &mut engine,
            r#"{"op":"delete","rows":[["0","1"],["0","0"]]}"#,
        );
        assert_eq!(doc.get("deleted").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(1));
        // Deleting more copies than exist is rejected atomically.
        let response = plain(
            &mut engine,
            r#"{"op":"delete","rows":[["f","white"],["f","white"]]}"#,
        );
        assert!(response.contains("\"ok\":false"), "{response}");
        assert!(response.contains("only 1 present"), "{response}");
        assert!(
            response.contains("\"code\":\"row_not_found\""),
            "{response}"
        );
        let doc = ok(&mut engine, r#"{"op":"stats"}"#);
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("deletes").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("delete_batches").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn insert_then_delete_round_trips_the_mup_set() {
        let mut engine = engine();
        let before = ok(&mut engine, r#"{"op":"mups"}"#);
        let _ = ok(&mut engine, r#"{"op":"insert","row":["f","black"]}"#);
        let _ = ok(&mut engine, r#"{"op":"delete","row":["f","black"]}"#);
        let after = ok(&mut engine, r#"{"op":"mups"}"#);
        assert_eq!(
            before.get("mups").unwrap().as_array().unwrap(),
            after.get("mups").unwrap().as_array().unwrap()
        );
    }

    #[test]
    fn snapshot_and_restore_round_trip_through_the_protocol() {
        let dir = std::env::temp_dir().join(format!("mithra-serve-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snapshot");
        let options = ServeOptions::new().with_snapshot_path(Some(path.clone()));
        let mut engine = engine();
        let _ = handle_line(
            &mut engine,
            &options,
            r#"{"op":"insert","row":["f","black"]}"#,
        );
        let mups_line = handle_line(&mut engine, &options, r#"{"op":"mups"}"#);
        let doc = Json::parse(&handle_line(&mut engine, &options, r#"{"op":"snapshot"}"#)).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(5));

        // Wreck the live state, then restore: responses must match exactly.
        let _ = handle_line(
            &mut engine,
            &options,
            r#"{"op":"insert","rows":[["m","asian"],["m","asian"]]}"#,
        );
        let doc = Json::parse(&handle_line(&mut engine, &options, r#"{"op":"restore"}"#)).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(5));
        assert_eq!(
            handle_line(&mut engine, &options, r#"{"op":"mups"}"#),
            mups_line,
            "restored engine must serve identical mups responses"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_rejects_a_threshold_change_mid_flight() {
        let dir =
            std::env::temp_dir().join(format!("mithra-restore-threshold-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snapshot");
        // Snapshot taken at τ=2…
        let ds = engine().dataset().clone();
        let tau2 = CoverageEngine::new(ds.clone(), Threshold::Count(2)).unwrap();
        crate::snapshot::save_snapshot(&tau2, &path).unwrap();
        // …must not restore into a server resolving τ=1: clients have been
        // quoting coverage verdicts against the serving threshold.
        let mut serving = CoverageEngine::new(ds, Threshold::Count(1)).unwrap();
        let options = ServeOptions::new().with_snapshot_path(Some(path.clone()));
        let response = handle_line(&mut serving, &options, r#"{"op":"restore"}"#);
        let doc = Json::parse(&response).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("code").and_then(Json::as_str),
            Some("threshold_mismatch"),
            "{response}"
        );
        assert_eq!(serving.tau(), 1, "serving engine must be untouched");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_keeps_the_serving_processes_shard_layout() {
        // A snapshot taken under one layout must not downgrade a server
        // running another: restore swaps the data in, not the deployment
        // config.
        let dir =
            std::env::temp_dir().join(format!("mithra-restore-shards-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snapshot");
        let single = engine(); // 1-shard engine writes the snapshot
        crate::snapshot::save_snapshot(&single, &path).unwrap();
        let mut sharded = crate::ShardedCoverageEngine::with_shards(
            engine().dataset().clone(),
            Threshold::Count(1),
            3,
        )
        .unwrap();
        let _ = ok(&mut sharded, r#"{"op":"insert","row":["f","black"]}"#);
        let options = ServeOptions::new().with_snapshot_path(Some(path.clone()));
        let response = handle_line(&mut sharded, &options, r#"{"op":"restore"}"#);
        assert!(response.contains("\"ok\":true"), "{response}");
        assert_eq!(
            sharded.shards(),
            3,
            "restore must not adopt the snapshot's layout"
        );
        assert_eq!(sharded.shard_layout().len(), 3);
        assert_eq!(sharded.dataset().len(), single.dataset().len());
        assert_eq!(sharded.mups(), single.mups());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_ops_without_a_path_answer_errors() {
        let mut engine = engine();
        for line in [r#"{"op":"snapshot"}"#, r#"{"op":"restore"}"#] {
            let response = plain(&mut engine, line);
            assert!(response.contains("\"ok\":false"), "{response}");
            assert!(response.contains("no snapshot path"), "{response}");
            assert!(response.contains("\"code\":\"no_snapshot\""), "{response}");
        }
    }

    #[test]
    fn snapshot_io_and_unhittable_codes_reach_the_wire() {
        // A snapshot path whose parent directory does not exist fails in
        // the tmp-file write and is classified as `snapshot_io`.
        let mut engine = engine();
        let dir = std::env::temp_dir().join(format!("mithra-missing-{}", std::process::id()));
        let options =
            ServeOptions::new().with_snapshot_path(Some(dir.join("no-such-dir").join("snap.json")));
        let response = handle_line(&mut engine, &options, r#"{"op":"snapshot"}"#);
        assert!(response.contains("\"ok\":false"), "{response}");
        assert!(response.contains("\"code\":\"snapshot_io\""), "{response}");

        // `unhittable` wraps the core solver's verdict that the remaining
        // target patterns cannot be covered by any valid row.
        let error = ServeError::from_service(crate::ServiceError::Core(
            coverage_core::CoverageError::Unhittable {
                patterns: vec!["1X".into()],
            },
        ));
        assert_eq!(error.code.as_str(), "unhittable");
        let response = error_response(None, &error);
        assert!(response.contains("\"code\":\"unhittable\""), "{response}");
    }

    #[test]
    fn panicking_handler_answers_an_error_and_spares_the_mutex() {
        let shared = Arc::new(Mutex::new(engine()));
        // A handler that panics while holding the engine must yield an error
        // response, not poison the mutex (which would kill every worker).
        let response = with_engine_contained(
            &shared,
            |error| error_response(None, &error),
            |_| -> String { panic!("handler bug") },
        );
        assert!(response.contains("\"ok\":false"), "{response}");
        assert!(response.contains("panicked"), "{response}");
        assert!(response.contains("\"code\":\"internal\""), "{response}");
        assert!(
            shared.lock().is_ok(),
            "mutex must not be poisoned by a contained panic"
        );
        // And the engine still answers real requests afterwards.
        let metrics = ServeMetrics::default();
        let response = respond_contained(
            &shared,
            &ServeOptions::default(),
            &metrics,
            r#"{"op":"stats"}"#,
        );
        assert!(response.contains("\"ok\":true"), "{response}");
    }

    #[test]
    fn externally_poisoned_mutex_recovers_with_a_rebuild() {
        let shared = Arc::new(Mutex::new(engine()));
        let poisoner = Arc::clone(&shared);
        let _ = thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("simulated handler crash while holding the engine");
        })
        .join();
        assert!(shared.lock().is_err(), "mutex must start poisoned");
        let metrics = ServeMetrics::default();
        let response = respond_contained(
            &shared,
            &ServeOptions::default(),
            &metrics,
            r#"{"op":"stats"}"#,
        );
        assert!(response.contains("\"ok\":true"), "{response}");
        assert!(shared.lock().is_ok(), "poison must be cleared");
        // The recovery rebuild is visible in the stats.
        let doc = Json::parse(&response).unwrap();
        assert_eq!(doc.get("full_recomputes").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn connection_after_handler_panic_still_gets_an_answer() {
        // The availability property end-to-end: poison the engine mutex
        // (exactly what a panicking handler used to do), then connect — the
        // worker pool must still answer instead of hanging the connection.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().unwrap();
        let shared = Arc::new(Mutex::new(engine()));
        let poisoner = Arc::clone(&shared);
        let _ = thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("simulated handler crash");
        })
        .join();
        assert!(shared.lock().is_err(), "mutex must start poisoned");
        let server = Arc::clone(&shared);
        thread::spawn(move || {
            let options = ServeOptions::new()
                .with_io(IoMode::Blocking)
                .with_workers(1);
            let _ = serve(server, options, listener);
        });
        for _ in 0..2 {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(10)))
                .unwrap();
            writeln!(stream, "{{\"op\":\"stats\"}}").unwrap();
            stream.flush().unwrap();
            let mut reader = BufReader::new(stream);
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            assert!(
                response.contains("\"ok\":true"),
                "post-panic connection must be served: {response}"
            );
        }
    }

    #[test]
    fn bad_requests_get_error_responses() {
        let mut engine = engine();
        for line in [
            "nonsense",
            r#"{"op":"insert","row":["f"]}"#, // wrong arity
            r#"{"op":"insert","row":["f","martian"]}"#, // unknown value
            r#"{"op":"coverage","pattern":"XXX"}"#, // wrong arity
            r#"{"op":"coverage","pattern":"9X"}"#, // out-of-range code
            r#"{"op":"enhance","lambda":9}"#,
        ] {
            let response = plain(&mut engine, line);
            let doc = Json::parse(&response).expect("error response is valid JSON");
            assert_eq!(
                doc.get("ok").and_then(Json::as_bool),
                Some(false),
                "`{line}` should fail: {response}"
            );
            assert!(doc.get("error").and_then(Json::as_str).is_some());
            assert!(
                doc.get("code").and_then(Json::as_str).is_some(),
                "every failure carries a machine code: {response}"
            );
        }
        // The engine stays usable after every rejected request.
        let _ = ok(&mut engine, r#"{"op":"stats"}"#);
    }

    #[test]
    fn oversized_and_hostile_lines_get_error_responses_and_resync() {
        let mut engine = engine();
        // 2 MiB of 'a' with no structure, then a valid request on the next
        // line: the big line answers an error, the session keeps going.
        let mut script = vec![b'a'; 2 * MAX_LINE_BYTES];
        script.push(b'\n');
        script.extend_from_slice(b"{\"op\":\"stats\"}\n");
        // And a nesting bomb, which must be rejected by the parser's depth
        // cap rather than blowing the stack.
        script.extend_from_slice("[".repeat(100_000).as_bytes());
        script.push(b'\n');
        let mut output = Vec::new();
        serve_lines(
            &mut engine,
            &ServeOptions::default(),
            script.as_slice(),
            &mut output,
        )
        .unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"ok\":false") && lines[0].contains("exceeds"));
        assert!(lines[0].contains("\"code\":\"line_too_long\""));
        assert!(lines[1].contains("\"ok\":true"));
        assert!(lines[2].contains("\"ok\":false") && lines[2].contains("nesting"));
    }

    #[test]
    fn unterminated_final_line_is_served() {
        let mut engine = engine();
        let mut output = Vec::new();
        serve_lines(
            &mut engine,
            &ServeOptions::default(),
            &b"{\"op\":\"stats\"}"[..],
            &mut output,
        )
        .unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("\"ok\":true"), "{text}");
    }

    #[test]
    fn serve_lines_end_to_end() {
        let mut engine = engine();
        let script = concat!(
            "{\"op\":\"stats\"}\n",
            "\n", // blank lines are skipped
            "{\"op\":\"insert\",\"row\":[\"f\",\"black\"]}\n",
            "{\"op\":\"mups\"}\n",
        );
        let mut output = Vec::new();
        serve_lines(
            &mut engine,
            &ServeOptions::default(),
            script.as_bytes(),
            &mut output,
        )
        .unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one response per request: {text}");
        for line in lines {
            assert_eq!(
                Json::parse(line).unwrap().get("ok").and_then(Json::as_bool),
                Some(true)
            );
        }
    }
}
