//! Serving front ends: request dispatch, stdin/stdout line serving, and a
//! TCP listener with a small thread-per-connection pool.
//!
//! All front ends funnel into [`handle_line_with`], which never panics on
//! malformed input — every request line yields exactly one response line.
//! TCP workers additionally *contain* panics: a request handler that panics
//! answers an error response (after rebuilding the engine's derived state)
//! instead of poisoning the shared mutex and silently killing the pool.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use coverage_core::pattern::Pattern;
use coverage_data::Schema;
use coverage_index::CoverageBackend;

use crate::engine::CoverageEngine;
use crate::protocol::{error_response, parse_request, write_json_string, Request};
use crate::snapshot::save_snapshot;

/// Default number of worker threads for [`serve_tcp`].
pub const DEFAULT_WORKERS: usize = 4;

/// Configuration shared by every serving front end.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Backs the `snapshot`/`restore` ops; without a path they answer an
    /// error response.
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Auto-register unknown value strings on `insert` as new dictionary
    /// values (`mithra serve --grow-schema`) instead of rejecting the row.
    /// The explicit `grow` op works regardless of this flag.
    pub grow_schema: bool,
}

/// Encodes one protocol row (raw value names) into schema codes.
fn encode_row(schema: &Schema, raw: &[String]) -> Result<Vec<u8>, String> {
    if raw.len() != schema.arity() {
        return Err(format!(
            "row has {} values, schema has {} attributes",
            raw.len(),
            schema.arity()
        ));
    }
    raw.iter()
        .enumerate()
        .map(|(i, v)| schema.attribute(i).code_of(v).map_err(|e| e.to_string()))
        .collect()
}

/// Encodes protocol rows with **dictionary growth**: a value that resolves
/// against neither the dictionary nor the numeric fallback registers itself
/// as a new value on its attribute (the `--grow-schema` mode).
///
/// The whole batch is dry-run against a clone of the schema first — every
/// encoding and every growth is validated before the engine is touched —
/// so a rejected batch (bad arity, a dictionary at the cardinality
/// ceiling) registers nothing: insert stays atomic even while it grows
/// dictionaries.
fn encode_rows_growing<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    rows: &[Vec<String>],
) -> Result<Vec<Vec<u8>>, String> {
    let mut schema = engine.dataset().schema().clone();
    let arity = schema.arity();
    for raw in rows {
        if raw.len() != arity {
            return Err(format!(
                "row has {} values, schema has {arity} attributes",
                raw.len()
            ));
        }
    }
    let mut growths: Vec<(usize, String)> = Vec::new();
    let mut coded = Vec::with_capacity(rows.len());
    for raw in rows {
        let mut row = Vec::with_capacity(arity);
        for (i, v) in raw.iter().enumerate() {
            let code = match schema.attribute(i).code_of(v) {
                Ok(code) => code,
                Err(_) => {
                    let code = schema.add_value(i, v).map_err(|e| e.to_string())?;
                    growths.push((i, v.clone()));
                    code
                }
            };
            row.push(code);
        }
        coded.push(row);
    }
    // Replay the validated growths on the engine: the clone started from
    // the engine's schema and accepted these exact operations in this exact
    // order, so the codes line up and none of them can fail.
    for (attribute, value) in growths {
        engine
            .grow_value(attribute, value)
            .map_err(|e| e.to_string())?;
    }
    Ok(coded)
}

/// Human-readable form of a pattern's deterministic elements, e.g.
/// `sex=f, race=black` (the CLI's decode format); `(anything)` for the root.
fn decode_pattern(schema: &Schema, pattern: &Pattern) -> String {
    let parts: Vec<String> = (0..schema.arity())
        .filter_map(|i| {
            pattern.get(i).map(|v| {
                format!(
                    "{}={}",
                    schema.attribute(i).name(),
                    schema.attribute(i).value_name(v)
                )
            })
        })
        .collect();
    if parts.is_empty() {
        "(anything)".into()
    } else {
        parts.join(", ")
    }
}

fn dispatch<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    options: &ServeOptions,
    request: Request,
) -> Result<String, String> {
    let snapshot_path = options.snapshot_path.as_deref();
    let mut out = String::with_capacity(128);
    match request {
        Request::Insert { rows } => {
            let coded: Vec<Vec<u8>> = if options.grow_schema {
                encode_rows_growing(engine, &rows)?
            } else {
                rows.iter()
                    .map(|r| encode_row(engine.dataset().schema(), r))
                    .collect::<Result<_, _>>()?
            };
            engine.insert_batch(&coded).map_err(|e| e.to_string())?;
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "{{\"ok\":true,\"op\":\"insert\",\"inserted\":{},\"rows\":{},\"tau\":{},\"mups\":{}}}",
                    coded.len(),
                    engine.dataset().len(),
                    engine.tau(),
                    engine.mups().len()
                ),
            );
        }
        Request::Delete { rows } => {
            let coded: Vec<Vec<u8>> = rows
                .iter()
                .map(|r| encode_row(engine.dataset().schema(), r))
                .collect::<Result<_, _>>()?;
            engine.remove_batch(&coded).map_err(|e| e.to_string())?;
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "{{\"ok\":true,\"op\":\"delete\",\"deleted\":{},\"rows\":{},\"tau\":{},\"mups\":{}}}",
                    coded.len(),
                    engine.dataset().len(),
                    engine.tau(),
                    engine.mups().len()
                ),
            );
        }
        Request::Grow { attribute, value } => {
            let index = engine
                .dataset()
                .schema()
                .index_of(&attribute)
                .map_err(|e| e.to_string())?;
            let code = engine
                .grow_value(index, &value)
                .map_err(|e| e.to_string())?;
            out.push_str("{\"ok\":true,\"op\":\"grow\",\"attribute\":");
            write_json_string(&mut out, &attribute);
            out.push_str(",\"value\":");
            write_json_string(&mut out, &value);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"code\":{code},\"cardinality\":{},\"mups\":{}}}",
                    engine.dataset().schema().cardinality(index),
                    engine.mups().len()
                ),
            );
        }
        Request::Snapshot => {
            let path = snapshot_path.ok_or(
                "no snapshot path configured (start with `mithra serve … --snapshot PATH`)",
            )?;
            save_snapshot(engine, path).map_err(|e| e.to_string())?;
            out.push_str("{\"ok\":true,\"op\":\"snapshot\",\"path\":");
            write_json_string(&mut out, &path.display().to_string());
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"rows\":{},\"mups\":{}}}",
                    engine.dataset().len(),
                    engine.mups().len()
                ),
            );
        }
        Request::Restore => {
            let path = snapshot_path.ok_or(
                "no snapshot path configured (start with `mithra serve … --snapshot PATH`)",
            )?;
            // The op restores *data*, not deployment config: the serving
            // process keeps its current shard layout (which already
            // reflects any CLI --shards override) rather than silently
            // adopting whatever layout the snapshot was taken under.
            *engine = crate::snapshot::load_snapshot_with_layout(path, Some(engine.shards()))
                .map_err(|e| e.to_string())?;
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "{{\"ok\":true,\"op\":\"restore\",\"rows\":{},\"tau\":{},\"mups\":{}}}",
                    engine.dataset().len(),
                    engine.tau(),
                    engine.mups().len()
                ),
            );
        }
        Request::Mups { limit } => {
            let total = engine.mups().len();
            let shown = limit.unwrap_or(total).min(total);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "{{\"ok\":true,\"op\":\"mups\",\"count\":{},\"tau\":{},\"mups\":[",
                    total,
                    engine.tau()
                ),
            );
            for (i, mup) in engine.mups().iter().take(shown).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, &mup.to_string());
            }
            out.push_str("],\"decoded\":[");
            let schema = engine.dataset().schema();
            for (i, mup) in engine.mups().iter().take(shown).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, &decode_pattern(schema, mup));
            }
            out.push_str("]}");
        }
        Request::Coverage { pattern } => {
            let p = Pattern::parse(&pattern).map_err(|e| e.to_string())?;
            let coverage = engine.coverage(p.codes()).map_err(|e| e.to_string())?;
            let covered = coverage >= engine.tau();
            out.push_str("{\"ok\":true,\"op\":\"coverage\",\"pattern\":");
            write_json_string(&mut out, &pattern);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"coverage\":{coverage},\"covered\":{covered},\"tau\":{}}}",
                    engine.tau()
                ),
            );
        }
        Request::Enhance { lambda } => {
            let (plan, copies) = engine.enhance(lambda).map_err(|e| e.to_string())?;
            let schema = engine.dataset().schema();
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "{{\"ok\":true,\"op\":\"enhance\",\"lambda\":{lambda},\"targets\":{},\"collect\":[",
                    plan.input_size()
                ),
            );
            for (i, (combo, n)) in plan.combinations.iter().zip(&copies).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"values\":[");
                for (j, &v) in combo.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    write_json_string(&mut out, &schema.attribute(j).value_name(v));
                }
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("],\"copies\":{n}}}"));
            }
            out.push_str("]}");
        }
        Request::Stats => {
            let report = engine.report();
            let stats = engine.stats();
            let (cache_len, cache_cap, hits, misses, invalidated) = engine.cache_stats();
            let shard_layout = engine.shard_layout();
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    concat!(
                        "{{\"ok\":true,\"op\":\"stats\",\"rows\":{},\"attributes\":{},",
                        "\"tau\":{},\"mups\":{},\"max_covered_level\":{},",
                        "\"inserts\":{},\"batches\":{},\"deletes\":{},\"delete_batches\":{},",
                        "\"mups_retired\":{},\"mups_discovered\":{},\"full_recomputes\":{},",
                        "\"cache\":{{\"len\":{},\"capacity\":{},\"hits\":{},\"misses\":{},",
                        "\"invalidated\":{}}},\"dictionaries\":["
                    ),
                    engine.dataset().len(),
                    engine.dataset().arity(),
                    engine.tau(),
                    report.mup_count(),
                    report.maximum_covered_level(),
                    stats.inserts,
                    stats.batches,
                    stats.deletes,
                    stats.delete_batches,
                    stats.mups_retired,
                    stats.mups_discovered,
                    stats.full_recomputes,
                    cache_len,
                    cache_cap,
                    hits,
                    misses,
                    invalidated,
                ),
            );
            // Per-attribute dictionary sizes plus how much of each is growth
            // since load — the signal that the served schema has drifted
            // from the CSV's.
            let schema = engine.dataset().schema();
            for (i, (attr, grown)) in schema
                .attributes()
                .iter()
                .zip(engine.dictionary_growth())
                .enumerate()
            {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                write_json_string(&mut out, attr.name());
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!(
                        ",\"cardinality\":{},\"grown\":{grown}}}",
                        attr.cardinality()
                    ),
                );
            }
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!("],\"shards\":{{\"count\":{},\"rows\":[", shard_layout.len()),
            );
            // Per-shard row counts, so operators can see routing skew.
            for (i, rows) in shard_layout.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{rows}"));
            }
            out.push_str("]}}");
        }
    }
    Ok(out)
}

/// Handles one request line under the given [`ServeOptions`], returning
/// exactly one response line (without the trailing newline). Never panics on
/// malformed input.
pub fn handle_line_opts<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    options: &ServeOptions,
    line: &str,
) -> String {
    match parse_request(line).and_then(|req| dispatch(engine, options, req)) {
        Ok(response) => response,
        Err(message) => error_response(&message),
    }
}

/// [`handle_line_opts`] with only a snapshot path configured (no dictionary
/// growth on insert). `snapshot_path` backs the `snapshot`/`restore` ops;
/// without one they answer an error.
pub fn handle_line_with<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    snapshot_path: Option<&Path>,
    line: &str,
) -> String {
    let options = ServeOptions {
        snapshot_path: snapshot_path.map(Path::to_path_buf),
        grow_schema: false,
    };
    handle_line_opts(engine, &options, line)
}

/// [`handle_line_with`] without a snapshot path.
pub fn handle_line<B: CoverageBackend>(engine: &mut CoverageEngine<B>, line: &str) -> String {
    handle_line_with(engine, None, line)
}

/// Upper bound on one request line. Longer lines answer an error response
/// and are discarded up to the next newline — without this cap a single
/// newline-free stream would buffer unboundedly and OOM the whole server.
pub const MAX_LINE_BYTES: usize = 1 << 20;

enum LineRead {
    Line(String),
    TooLong,
    Eof,
}

/// Reads one newline-terminated request line, never buffering more than
/// [`MAX_LINE_BYTES`] of it. Invalid UTF-8 is replaced lossily (the JSON
/// layer then rejects it with a normal error response).
fn read_request_line(reader: &mut impl BufRead) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let n = io::Read::take(&mut *reader, MAX_LINE_BYTES as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    let terminated = buf.last() == Some(&b'\n');
    if terminated {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    if buf.len() <= MAX_LINE_BYTES && (terminated || n <= MAX_LINE_BYTES) {
        // Unterminated final lines (EOF without newline) are served too.
        return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
    }
    // Cap hit mid-line: discard the rest in bounded chunks to resync.
    loop {
        buf.clear();
        let m = io::Read::take(&mut *reader, 64 * 1024).read_until(b'\n', &mut buf)?;
        if m == 0 || buf.last() == Some(&b'\n') {
            return Ok(LineRead::TooLong);
        }
    }
}

/// The shared request/response loop: one response line per request line,
/// oversized lines answered with an error and skipped, until EOF.
fn serve_loop(
    mut input: impl BufRead,
    mut output: impl Write,
    mut respond: impl FnMut(&str) -> String,
) -> io::Result<()> {
    loop {
        let response = match read_request_line(&mut input)? {
            LineRead::Eof => return Ok(()),
            LineRead::TooLong => {
                error_response(&format!("request line exceeds {MAX_LINE_BYTES} bytes"))
            }
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                respond(&line)
            }
        };
        writeln!(output, "{response}")?;
        output.flush()?;
    }
}

/// Serves newline-delimited requests from `input` to `output` until EOF
/// (the `mithra serve` stdin/stdout mode) under the given [`ServeOptions`].
/// Blank lines are skipped.
pub fn serve_lines_opts<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    options: &ServeOptions,
    input: impl BufRead,
    output: impl Write,
) -> io::Result<()> {
    serve_loop(input, output, |line| {
        handle_line_opts(engine, options, line)
    })
}

/// [`serve_lines_opts`] with only a snapshot path configured (no dictionary
/// growth on insert).
pub fn serve_lines_with<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    snapshot_path: Option<&Path>,
    input: impl BufRead,
    output: impl Write,
) -> io::Result<()> {
    let options = ServeOptions {
        snapshot_path: snapshot_path.map(Path::to_path_buf),
        grow_schema: false,
    };
    serve_lines_opts(engine, &options, input, output)
}

/// [`serve_lines_with`] without a snapshot path.
pub fn serve_lines<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    input: impl BufRead,
    output: impl Write,
) -> io::Result<()> {
    serve_lines_with(engine, None, input, output)
}

/// How long a TCP connection may sit idle between requests before it is
/// closed. Workers come from a small fixed pool — without this bound a
/// handful of silent clients would park every worker in a blocking read
/// and starve all queued connections.
pub const IDLE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(300);

/// Runs `action` against the shared engine with panics **contained**: the
/// closure executes inside `catch_unwind` while the guard is held, so a
/// panicking handler unwinds *within* the lock scope and the mutex is
/// released cleanly instead of being poisoned — the failure stays scoped to
/// one request rather than cascading through the worker pool.
///
/// Two layers of defense:
///
/// * A caught panic answers an error response after
///   [`CoverageEngine::rebuild`] re-derives the engine's oracle/MUPs/cache
///   from the dataset (the panic may have torn a mid-update invariant).
/// * If the mutex is *already* poisoned (a panic that predates this guard,
///   e.g. an external lock holder), the poison is cleared, the engine
///   rebuilt, and serving resumes — the pool never wedges permanently.
fn with_engine_contained<B: CoverageBackend>(
    engine: &Arc<Mutex<CoverageEngine<B>>>,
    action: impl FnOnce(&mut CoverageEngine<B>) -> Result<String, String>,
) -> String {
    let mut guard = match engine.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            engine.clear_poison();
            let mut guard = poisoned.into_inner();
            if let Err(e) = guard.rebuild() {
                return error_response(&format!("engine rebuild after panic failed: {e}"));
            }
            guard
        }
    };
    match std::panic::catch_unwind(AssertUnwindSafe(|| action(&mut guard))) {
        Ok(Ok(response)) => response,
        Ok(Err(message)) => error_response(&message),
        Err(_) => match guard.rebuild() {
            Ok(()) => error_response("internal error: request handler panicked; engine rebuilt"),
            Err(e) => error_response(&format!("engine rebuild after panic failed: {e}")),
        },
    }
}

fn serve_connection<B: CoverageBackend>(
    engine: &Arc<Mutex<CoverageEngine<B>>>,
    options: &ServeOptions,
    stream: TcpStream,
) -> io::Result<()> {
    stream.set_read_timeout(Some(IDLE_TIMEOUT))?;
    let reader = BufReader::new(stream.try_clone()?);
    serve_loop(reader, stream, |line| {
        // Parse needs no engine state — keep it outside the lock so one
        // connection's slow/hostile request text cannot stall the others.
        match parse_request(line) {
            Err(message) => error_response(&message),
            Ok(request) => {
                with_engine_contained(engine, |engine| dispatch(engine, options, request))
            }
        }
    })
}

/// Serves the protocol over TCP with a fixed pool of `workers` threads
/// (thread-per-connection, up to `2 × workers` connections queue when all
/// workers are busy; beyond that new connections are closed immediately
/// rather than pinning file descriptors in an unbounded queue).
/// Runs until the listener fails; individual connection errors are dropped,
/// and a panicking request handler costs one error response — never a
/// worker thread or the engine mutex (see [`with_engine_contained`]).
pub fn serve_tcp_opts<B: CoverageBackend>(
    engine: Arc<Mutex<CoverageEngine<B>>>,
    options: ServeOptions,
    listener: TcpListener,
    workers: usize,
) -> io::Result<()> {
    let workers = workers.max(1);
    let (sender, receiver) = mpsc::sync_channel::<TcpStream>(workers * 2);
    let receiver = Arc::new(Mutex::new(receiver));
    let mut pool = Vec::new();
    for _ in 0..workers {
        let receiver = Arc::clone(&receiver);
        let engine = Arc::clone(&engine);
        let options = options.clone();
        pool.push(thread::spawn(move || loop {
            // recv() itself cannot panic while holding the lock, but recover
            // from poison anyway: a wedged queue mutex must never strand the
            // listener accepting connections nobody will serve.
            let next = receiver
                .lock()
                .unwrap_or_else(|poisoned| {
                    receiver.clear_poison();
                    poisoned.into_inner()
                })
                .recv();
            match next {
                Ok(stream) => {
                    // A dropped connection only ends that conversation, and
                    // an I/O-layer panic only ends this iteration — the
                    // worker survives to take the next connection.
                    let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let _ = serve_connection(&engine, &options, stream);
                    }));
                }
                Err(_) => break, // listener gone — shut the worker down
            }
        }));
    }
    let mut accept_failures = 0u32;
    let mut result = Ok(());
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                accept_failures = 0;
                match sender.try_send(stream) {
                    Ok(()) => {}
                    // Saturated: shed load by closing the new connection now
                    // (dropping the stream) instead of letting queued sockets
                    // accumulate fds with no idle timer running.
                    Err(mpsc::TrySendError::Full(stream)) => drop(stream),
                    Err(mpsc::TrySendError::Disconnected(_)) => break,
                }
            }
            // Transient accept failures (ECONNABORTED, EMFILE under fd
            // pressure) recur immediately; back off briefly so they cannot
            // busy-spin the accept thread while workers hold the fds that
            // need to drain — but a listener that stays broken must
            // surface as an error, not an idle zombie process.
            Err(e) => {
                accept_failures += 1;
                if accept_failures >= 100 {
                    result = Err(e);
                    break;
                }
                thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
    drop(sender);
    for worker in pool {
        let _ = worker.join();
    }
    result
}

/// [`serve_tcp_opts`] with only a snapshot path configured (no dictionary
/// growth on insert). `snapshot_path` backs the `snapshot`/`restore` ops.
pub fn serve_tcp_with<B: CoverageBackend>(
    engine: Arc<Mutex<CoverageEngine<B>>>,
    snapshot_path: Option<std::path::PathBuf>,
    listener: TcpListener,
    workers: usize,
) -> io::Result<()> {
    let options = ServeOptions {
        snapshot_path,
        grow_schema: false,
    };
    serve_tcp_opts(engine, options, listener, workers)
}

/// [`serve_tcp_with`] without a snapshot path.
pub fn serve_tcp<B: CoverageBackend>(
    engine: Arc<Mutex<CoverageEngine<B>>>,
    listener: TcpListener,
    workers: usize,
) -> io::Result<()> {
    serve_tcp_with(engine, None, listener, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Json;
    use coverage_core::Threshold;
    use coverage_data::{Attribute, Dataset};

    /// A dictionary-carrying dataset: sex ∈ {m,f}, race ∈ {white,black,asian}.
    fn engine() -> CoverageEngine {
        let schema = Schema::new(vec![
            Attribute::with_values("sex", ["m", "f"]).unwrap(),
            Attribute::with_values("race", ["white", "black", "asian"]).unwrap(),
        ])
        .unwrap();
        let ds =
            Dataset::from_rows(schema, &[vec![0, 0], vec![0, 1], vec![1, 0], vec![0, 0]]).unwrap();
        CoverageEngine::new(ds, Threshold::Count(1)).unwrap()
    }

    fn ok<B: CoverageBackend>(engine: &mut CoverageEngine<B>, line: &str) -> Json {
        let response = handle_line(engine, line);
        let doc = Json::parse(&response).expect("response is valid JSON");
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "request `{line}` failed: {response}"
        );
        doc
    }

    #[test]
    fn insert_by_value_name_and_by_code() {
        let mut engine = engine();
        // MUPs at start: f|black (11), X|asian (X2) per τ=1.
        let doc = ok(&mut engine, r#"{"op":"insert","row":["f","black"]}"#);
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(5));
        // Numeric codes also work ("1" = f, "2" = asian).
        let doc = ok(
            &mut engine,
            r#"{"op":"insert","rows":[["1","2"],["m","asian"]]}"#,
        );
        assert_eq!(doc.get("inserted").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("mups").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn mups_lists_and_limits() {
        let mut engine = engine();
        let doc = ok(&mut engine, r#"{"op":"mups"}"#);
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("mups").unwrap().as_array().unwrap().len(), 2);
        let doc = ok(&mut engine, r#"{"op":"mups","limit":1}"#);
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("mups").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn mups_decode_to_value_names() {
        let mut engine = engine();
        let doc = ok(&mut engine, r#"{"op":"mups"}"#);
        let decoded: Vec<&str> = doc
            .get("decoded")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert_eq!(decoded, vec!["sex=f, race=black", "race=asian"]);
    }

    #[test]
    fn coverage_roundtrip() {
        let mut engine = engine();
        let doc = ok(&mut engine, r#"{"op":"coverage","pattern":"0X"}"#);
        assert_eq!(doc.get("coverage").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("covered").and_then(Json::as_bool), Some(true));
        let doc = ok(&mut engine, r#"{"op":"coverage","pattern":"12"}"#);
        assert_eq!(doc.get("coverage").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("covered").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn enhance_decodes_value_names() {
        let mut engine = engine();
        let doc = ok(&mut engine, r#"{"op":"enhance","lambda":2}"#);
        let collect = doc.get("collect").unwrap().as_array().unwrap();
        assert!(!collect.is_empty());
        for item in collect {
            let values = item.get("values").unwrap().as_array().unwrap();
            assert_eq!(values.len(), 2);
            assert!(item.get("copies").and_then(Json::as_u64).is_some());
        }
    }

    #[test]
    fn stats_reports_counters() {
        let mut engine = engine();
        let _ = ok(&mut engine, r#"{"op":"insert","row":["f","black"]}"#);
        let doc = ok(&mut engine, r#"{"op":"stats"}"#);
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(5));
        assert_eq!(doc.get("attributes").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("inserts").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("deletes").and_then(Json::as_u64), Some(0));
        assert!(doc.get("cache").unwrap().get("capacity").is_some());
        assert!(
            doc.get("cache").unwrap().get("invalidated").is_some(),
            "invalidation churn must be visible to operators"
        );
        let shards = doc.get("shards").expect("stats must report shard layout");
        assert_eq!(shards.get("count").and_then(Json::as_u64), Some(1));
        let rows: Vec<u64> = shards
            .get("rows")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(rows, vec![5]);
    }

    #[test]
    fn stats_report_per_shard_rows_for_sharded_engines() {
        let schema = Schema::new(vec![
            Attribute::with_values("sex", ["m", "f"]).unwrap(),
            Attribute::with_values("race", ["white", "black", "asian"]).unwrap(),
        ])
        .unwrap();
        let ds = Dataset::from_rows(
            schema,
            &[vec![0, 0], vec![0, 1], vec![1, 0], vec![0, 0], vec![1, 2]],
        )
        .unwrap();
        let mut engine = crate::ShardedCoverageEngine::with_shards(ds, Threshold::Count(1), 2)
            .expect("sharded engine");
        let _ = ok(&mut engine, r#"{"op":"insert","row":["f","black"]}"#);
        let doc = ok(&mut engine, r#"{"op":"stats"}"#);
        let shards = doc.get("shards").unwrap();
        assert_eq!(shards.get("count").and_then(Json::as_u64), Some(2));
        let rows: Vec<u64> = shards
            .get("rows")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.iter().sum::<u64>(), 6, "per-shard rows must sum to n");
    }

    #[test]
    fn grow_op_registers_a_value_and_mints_its_mup() {
        let mut engine = engine();
        let doc = ok(
            &mut engine,
            r#"{"op":"grow","attr":"race","value":"hispanic"}"#,
        );
        assert_eq!(doc.get("code").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("cardinality").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.get("attribute").and_then(Json::as_str), Some("race"));
        // The zero-coverage level-1 pattern joined the frontier…
        let doc = ok(&mut engine, r#"{"op":"coverage","pattern":"X3"}"#);
        assert_eq!(doc.get("coverage").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("covered").and_then(Json::as_bool), Some(false));
        // …and inserting the value by name retires it.
        let doc = ok(&mut engine, r#"{"op":"insert","row":["m","hispanic"]}"#);
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(5));
        let doc = ok(&mut engine, r#"{"op":"coverage","pattern":"X3"}"#);
        assert_eq!(doc.get("covered").and_then(Json::as_bool), Some(true));
        // Unknown attributes and duplicate values answer errors.
        for line in [
            r#"{"op":"grow","attr":"height","value":"tall"}"#,
            r#"{"op":"grow","attr":"race","value":"hispanic"}"#,
        ] {
            let response = handle_line(&mut engine, line);
            assert!(response.contains("\"ok\":false"), "{response}");
        }
    }

    #[test]
    fn grow_schema_mode_auto_registers_unknown_values() {
        let mut engine = engine();
        let options = ServeOptions {
            snapshot_path: None,
            grow_schema: true,
        };
        // Without the flag the unseen value is rejected (the original bug's
        // guard behavior, still the default)…
        let strict = handle_line(&mut engine, r#"{"op":"insert","row":["f","hispanic"]}"#);
        assert!(strict.contains("\"ok\":false"), "{strict}");
        // …with it, the insert grows the dictionary and lands the row.
        let response = handle_line_opts(
            &mut engine,
            &options,
            r#"{"op":"insert","rows":[["f","hispanic"],["nonbinary","hispanic"]]}"#,
        );
        let doc = Json::parse(&response).unwrap();
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
        assert_eq!(doc.get("inserted").and_then(Json::as_u64), Some(2));
        let schema_cards = engine.dataset().schema().cardinalities();
        assert_eq!(schema_cards, vec![3, 4], "both dictionaries grew");
        assert_eq!(engine.dictionary_growth(), &[1, 1]);
        assert_eq!(engine.coverage(&[2, 3]).unwrap(), 1);
        // Arity is validated before any growth: a malformed batch with a
        // fresh value must not register it.
        let response = handle_line_opts(
            &mut engine,
            &options,
            r#"{"op":"insert","rows":[["f","martian","extra"]]}"#,
        );
        assert!(response.contains("\"ok\":false"), "{response}");
        assert_eq!(engine.dataset().schema().cardinalities(), vec![3, 4]);
    }

    #[test]
    fn grow_schema_batches_are_atomic_under_growth_failure() {
        use coverage_data::MAX_CARDINALITY;
        // An attribute one value short of the ceiling: the first row's new
        // value fits, the second's does not — the whole batch must be
        // rejected with nothing registered and no MUP minted.
        let schema = Schema::new(vec![coverage_data::Attribute::new(
            "big",
            MAX_CARDINALITY - 1,
        )
        .unwrap()])
        .unwrap();
        let ds = Dataset::from_rows(schema, &[vec![0]]).unwrap();
        let mut engine = CoverageEngine::new(ds, Threshold::Count(1)).unwrap();
        let options = ServeOptions {
            snapshot_path: None,
            grow_schema: true,
        };
        let mups_before = engine.mups().len();
        let response = handle_line_opts(
            &mut engine,
            &options,
            r#"{"op":"insert","rows":[["newA"],["newB"]]}"#,
        );
        assert!(response.contains("\"ok\":false"), "{response}");
        assert_eq!(
            engine.dataset().schema().cardinality(0) as usize,
            MAX_CARDINALITY - 1,
            "failed batch must not grow the dictionary"
        );
        assert_eq!(engine.dictionary_growth(), &[0]);
        assert_eq!(engine.mups().len(), mups_before);
        assert_eq!(engine.dataset().len(), 1);
        // A batch that fits entirely still grows and inserts.
        let response = handle_line_opts(
            &mut engine,
            &options,
            r#"{"op":"insert","rows":[["newA"],["newA"]]}"#,
        );
        assert!(response.contains("\"ok\":true"), "{response}");
        assert_eq!(engine.dictionary_growth(), &[1]);
        assert_eq!(engine.dataset().len(), 3);
    }

    #[test]
    fn stats_report_per_attribute_dictionaries() {
        let mut engine = engine();
        let _ = ok(&mut engine, r#"{"op":"grow","attr":"sex","value":"x"}"#);
        let doc = ok(&mut engine, r#"{"op":"stats"}"#);
        let dicts = doc
            .get("dictionaries")
            .expect("stats must report dictionaries")
            .as_array()
            .unwrap();
        assert_eq!(dicts.len(), 2);
        assert_eq!(dicts[0].get("name").and_then(Json::as_str), Some("sex"));
        assert_eq!(dicts[0].get("cardinality").and_then(Json::as_u64), Some(3));
        assert_eq!(dicts[0].get("grown").and_then(Json::as_u64), Some(1));
        assert_eq!(dicts[1].get("name").and_then(Json::as_str), Some("race"));
        assert_eq!(dicts[1].get("cardinality").and_then(Json::as_u64), Some(3));
        assert_eq!(dicts[1].get("grown").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn delete_op_removes_rows_and_reports() {
        let mut engine = engine();
        let doc = ok(&mut engine, r#"{"op":"delete","row":["m","white"]}"#);
        assert_eq!(doc.get("deleted").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(3));
        // Numeric codes work, as for insert.
        let doc = ok(
            &mut engine,
            r#"{"op":"delete","rows":[["0","1"],["0","0"]]}"#,
        );
        assert_eq!(doc.get("deleted").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(1));
        // Deleting more copies than exist is rejected atomically.
        let response = handle_line(
            &mut engine,
            r#"{"op":"delete","rows":[["f","white"],["f","white"]]}"#,
        );
        assert!(response.contains("\"ok\":false"), "{response}");
        assert!(response.contains("only 1 present"), "{response}");
        let doc = ok(&mut engine, r#"{"op":"stats"}"#);
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("deletes").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("delete_batches").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn insert_then_delete_round_trips_the_mup_set() {
        let mut engine = engine();
        let before = ok(&mut engine, r#"{"op":"mups"}"#);
        let _ = ok(&mut engine, r#"{"op":"insert","row":["f","black"]}"#);
        let _ = ok(&mut engine, r#"{"op":"delete","row":["f","black"]}"#);
        let after = ok(&mut engine, r#"{"op":"mups"}"#);
        assert_eq!(
            before.get("mups").unwrap().as_array().unwrap(),
            after.get("mups").unwrap().as_array().unwrap()
        );
    }

    #[test]
    fn snapshot_and_restore_round_trip_through_the_protocol() {
        let dir = std::env::temp_dir().join(format!("mithra-serve-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snapshot");
        let mut engine = engine();
        let _ = handle_line_with(
            &mut engine,
            Some(&path),
            r#"{"op":"insert","row":["f","black"]}"#,
        );
        let mups_line = handle_line_with(&mut engine, Some(&path), r#"{"op":"mups"}"#);
        let doc = Json::parse(&handle_line_with(
            &mut engine,
            Some(&path),
            r#"{"op":"snapshot"}"#,
        ))
        .unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(5));

        // Wreck the live state, then restore: responses must match exactly.
        let _ = handle_line_with(
            &mut engine,
            Some(&path),
            r#"{"op":"insert","rows":[["m","asian"],["m","asian"]]}"#,
        );
        let doc = Json::parse(&handle_line_with(
            &mut engine,
            Some(&path),
            r#"{"op":"restore"}"#,
        ))
        .unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(5));
        assert_eq!(
            handle_line_with(&mut engine, Some(&path), r#"{"op":"mups"}"#),
            mups_line,
            "restored engine must serve identical mups responses"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_keeps_the_serving_processes_shard_layout() {
        // A snapshot taken under one layout must not downgrade a server
        // running another: restore swaps the data in, not the deployment
        // config.
        let dir =
            std::env::temp_dir().join(format!("mithra-restore-shards-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snapshot");
        let single = engine(); // 1-shard engine writes the snapshot
        crate::snapshot::save_snapshot(&single, &path).unwrap();
        let mut sharded = crate::ShardedCoverageEngine::with_shards(
            engine().dataset().clone(),
            Threshold::Count(1),
            3,
        )
        .unwrap();
        let _ = ok(&mut sharded, r#"{"op":"insert","row":["f","black"]}"#);
        let response = handle_line_with(&mut sharded, Some(&path), r#"{"op":"restore"}"#);
        assert!(response.contains("\"ok\":true"), "{response}");
        assert_eq!(
            sharded.shards(),
            3,
            "restore must not adopt the snapshot's layout"
        );
        assert_eq!(sharded.shard_layout().len(), 3);
        assert_eq!(sharded.dataset().len(), single.dataset().len());
        assert_eq!(sharded.mups(), single.mups());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_ops_without_a_path_answer_errors() {
        let mut engine = engine();
        for line in [r#"{"op":"snapshot"}"#, r#"{"op":"restore"}"#] {
            let response = handle_line(&mut engine, line);
            assert!(response.contains("\"ok\":false"), "{response}");
            assert!(response.contains("no snapshot path"), "{response}");
        }
    }

    #[test]
    fn panicking_handler_answers_an_error_and_spares_the_mutex() {
        let shared = Arc::new(Mutex::new(engine()));
        // A handler that panics while holding the engine must yield an error
        // response, not poison the mutex (which would kill every worker).
        let response = with_engine_contained(&shared, |_| -> Result<String, String> {
            panic!("handler bug")
        });
        assert!(response.contains("\"ok\":false"), "{response}");
        assert!(response.contains("panicked"), "{response}");
        assert!(
            shared.lock().is_ok(),
            "mutex must not be poisoned by a contained panic"
        );
        // And the engine still answers real requests afterwards.
        let response = with_engine_contained(&shared, |engine| {
            dispatch(engine, &ServeOptions::default(), Request::Stats)
        });
        assert!(response.contains("\"ok\":true"), "{response}");
    }

    #[test]
    fn externally_poisoned_mutex_recovers_with_a_rebuild() {
        let shared = Arc::new(Mutex::new(engine()));
        let poisoner = Arc::clone(&shared);
        let _ = thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("simulated handler crash while holding the engine");
        })
        .join();
        assert!(shared.lock().is_err(), "mutex must start poisoned");
        let response = with_engine_contained(&shared, |engine| {
            dispatch(engine, &ServeOptions::default(), Request::Stats)
        });
        assert!(response.contains("\"ok\":true"), "{response}");
        assert!(shared.lock().is_ok(), "poison must be cleared");
        // The recovery rebuild is visible in the stats.
        let doc = Json::parse(&response).unwrap();
        assert_eq!(doc.get("full_recomputes").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn connection_after_handler_panic_still_gets_an_answer() {
        // The ISSUE's availability bug end-to-end: poison the engine mutex
        // (exactly what a panicking handler used to do), then connect — the
        // worker pool must still answer instead of hanging the connection.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().unwrap();
        let shared = Arc::new(Mutex::new(engine()));
        let poisoner = Arc::clone(&shared);
        let _ = thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("simulated handler crash");
        })
        .join();
        assert!(shared.lock().is_err(), "mutex must start poisoned");
        let server = Arc::clone(&shared);
        thread::spawn(move || {
            let _ = serve_tcp(server, listener, 1);
        });
        for _ in 0..2 {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(10)))
                .unwrap();
            writeln!(stream, "{{\"op\":\"stats\"}}").unwrap();
            stream.flush().unwrap();
            let mut reader = BufReader::new(stream);
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            assert!(
                response.contains("\"ok\":true"),
                "post-panic connection must be served: {response}"
            );
        }
    }

    #[test]
    fn bad_requests_get_error_responses() {
        let mut engine = engine();
        for line in [
            "nonsense",
            r#"{"op":"insert","row":["f"]}"#, // wrong arity
            r#"{"op":"insert","row":["f","martian"]}"#, // unknown value
            r#"{"op":"coverage","pattern":"XXX"}"#, // wrong arity
            r#"{"op":"coverage","pattern":"9X"}"#, // out-of-range code
            r#"{"op":"enhance","lambda":9}"#,
        ] {
            let response = handle_line(&mut engine, line);
            let doc = Json::parse(&response).expect("error response is valid JSON");
            assert_eq!(
                doc.get("ok").and_then(Json::as_bool),
                Some(false),
                "`{line}` should fail: {response}"
            );
            assert!(doc.get("error").and_then(Json::as_str).is_some());
        }
        // The engine stays usable after every rejected request.
        let _ = ok(&mut engine, r#"{"op":"stats"}"#);
    }

    #[test]
    fn oversized_and_hostile_lines_get_error_responses_and_resync() {
        let mut engine = engine();
        // 2 MiB of 'a' with no structure, then a valid request on the next
        // line: the big line answers an error, the session keeps going.
        let mut script = vec![b'a'; 2 * MAX_LINE_BYTES];
        script.push(b'\n');
        script.extend_from_slice(b"{\"op\":\"stats\"}\n");
        // And a nesting bomb, which must be rejected by the parser's depth
        // cap rather than blowing the stack.
        script.extend_from_slice("[".repeat(100_000).as_bytes());
        script.push(b'\n');
        let mut output = Vec::new();
        serve_lines(&mut engine, script.as_slice(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"ok\":false") && lines[0].contains("exceeds"));
        assert!(lines[1].contains("\"ok\":true"));
        assert!(lines[2].contains("\"ok\":false") && lines[2].contains("nesting"));
    }

    #[test]
    fn unterminated_final_line_is_served() {
        let mut engine = engine();
        let mut output = Vec::new();
        serve_lines(&mut engine, &b"{\"op\":\"stats\"}"[..], &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("\"ok\":true"), "{text}");
    }

    #[test]
    fn serve_lines_end_to_end() {
        let mut engine = engine();
        let script = concat!(
            "{\"op\":\"stats\"}\n",
            "\n", // blank lines are skipped
            "{\"op\":\"insert\",\"row\":[\"f\",\"black\"]}\n",
            "{\"op\":\"mups\"}\n",
        );
        let mut output = Vec::new();
        serve_lines(&mut engine, script.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one response per request: {text}");
        for line in lines {
            assert_eq!(
                Json::parse(line).unwrap().get("ok").and_then(Json::as_bool),
                Some(true)
            );
        }
    }
}
