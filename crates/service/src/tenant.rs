//! Multi-dataset tenancy: one process, one event loop, N independent
//! engines (`mithra serve --datasets <spec>`).
//!
//! Every request may carry an optional `"dataset"` field naming the engine
//! it targets; requests without one route to the **default** dataset
//! (tenant 0), so every existing client keeps working byte-for-byte.
//! Tenants share the event loop thread, the per-tick admission-control
//! budget, and the I/O metrics; each has its own [`crate::CoverageEngine`],
//! [`crate::oplog::OpLog`], and snapshot path (carried in its own
//! [`ServeOptions`]). Per-dataset request counters surface in the `stats`
//! op as `io.datasets`.
//!
//! Tenancy rides the event front end only — the blocking pool and stdin
//! modes serve a single unnamed dataset and answer `unknown_dataset` to
//! any `"dataset"` routing.

use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use coverage_index::CoverageBackend;

use crate::engine::CoverageEngine;
use crate::event::{serve_event_tenants, EventTenant};
use crate::protocol::{ErrorCode, ServeError};
use crate::server::{IoMode, ServeOptions};

/// Per-dataset serving counters, surfaced as `stats.io.datasets`.
#[derive(Debug)]
pub struct DatasetCounters {
    name: String,
    requests: AtomicU64,
}

impl DatasetCounters {
    /// Fresh counters for the dataset named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        DatasetCounters {
            name: name.into(),
            requests: AtomicU64::new(0),
        }
    }

    /// The dataset's routing name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Requests routed to this dataset (engine-bound ones; shed and
    /// malformed requests are not attributed).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    pub(crate) fn add_requests(&self, n: u64) {
        self.requests.fetch_add(n, Ordering::Relaxed);
    }
}

/// One hosted dataset: its routing name, engine, and per-tenant options
/// (snapshot path, op log, growth mode — the shared knobs like
/// `max_pending` are read from tenant 0).
pub struct TenantSpec<B: CoverageBackend> {
    /// The `"dataset"` request field that routes here. Tenant 0's name is
    /// also implied by requests with no `"dataset"` field at all.
    pub name: String,
    /// The engine serving this dataset.
    pub engine: Arc<Mutex<CoverageEngine<B>>>,
    /// This dataset's serving options (its own snapshot/op-log paths).
    pub options: ServeOptions,
}

impl<B: CoverageBackend> TenantSpec<B> {
    /// Bundles a named engine and its options into a tenant.
    pub fn new(
        name: impl Into<String>,
        engine: Arc<Mutex<CoverageEngine<B>>>,
        options: ServeOptions,
    ) -> Self {
        TenantSpec {
            name: name.into(),
            engine,
            options,
        }
    }
}

/// Resolves a request's optional `"dataset"` field against the hosted
/// tenant names (`None` = the single unnamed dataset of a non-tenant
/// server). Absent routing always lands on tenant 0.
pub(crate) fn resolve_tenant(
    names: &[Option<String>],
    requested: Option<&str>,
) -> Result<usize, ServeError> {
    let Some(name) = requested else {
        return Ok(0);
    };
    if let Some(index) = names.iter().position(|n| n.as_deref() == Some(name)) {
        return Ok(index);
    }
    if names.len() == 1 && names[0].is_none() {
        return Err(crate::server::unknown_dataset_error(name));
    }
    let hosted: Vec<&str> = names
        .iter()
        .map(|n| n.as_deref().unwrap_or("default"))
        .collect();
    Err(ServeError::new(
        ErrorCode::UnknownDataset,
        format!("unknown dataset `{name}` (hosting: {})", hosted.join(", ")),
    ))
}

/// Serves several datasets from one event loop until the listener fails.
/// Requires the event front end ([`IoMode::Event`]), at least one tenant,
/// and unique names; tenant 0 is the default dataset that un-routed
/// requests land on.
pub fn serve_tenants<B: CoverageBackend>(
    tenants: Vec<TenantSpec<B>>,
    listener: TcpListener,
) -> io::Result<()> {
    if tenants.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "no datasets to serve",
        ));
    }
    if tenants[0].options.io() != IoMode::Event {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "multi-dataset serving requires the event front end (--io event)",
        ));
    }
    for (i, a) in tenants.iter().enumerate() {
        for b in &tenants[i + 1..] {
            if a.name == b.name {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate dataset name `{}`", a.name),
                ));
            }
        }
    }
    let directory: Arc<Vec<Arc<DatasetCounters>>> = Arc::new(
        tenants
            .iter()
            .map(|t| Arc::new(DatasetCounters::new(t.name.clone())))
            .collect(),
    );
    let event_tenants: Vec<EventTenant<B>> = tenants
        .into_iter()
        .enumerate()
        .map(|(i, t)| EventTenant {
            name: Some(t.name),
            engine: t.engine,
            options: t
                .options
                .with_dataset_directory(Some(Arc::clone(&directory))),
            counters: Some(Arc::clone(&directory[i])),
        })
        .collect();
    serve_event_tenants(event_tenants, listener)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(list: &[Option<&str>]) -> Vec<Option<String>> {
        list.iter().map(|n| n.map(str::to_string)).collect()
    }

    #[test]
    fn absent_routing_lands_on_the_default_tenant() {
        assert_eq!(resolve_tenant(&names(&[None]), None), Ok(0));
        assert_eq!(
            resolve_tenant(&names(&[Some("default"), Some("hr")]), None),
            Ok(0)
        );
    }

    #[test]
    fn named_routing_resolves_or_rejects() {
        let hosted = names(&[Some("default"), Some("hr")]);
        assert_eq!(resolve_tenant(&hosted, Some("hr")), Ok(1));
        assert_eq!(resolve_tenant(&hosted, Some("default")), Ok(0));
        let err = resolve_tenant(&hosted, Some("sales")).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownDataset);
        assert!(
            err.message.contains("hosting: default, hr"),
            "{}",
            err.message
        );
    }

    #[test]
    fn single_unnamed_servers_reject_all_routing() {
        let err = resolve_tenant(&names(&[None]), Some("default")).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownDataset);
        assert!(err.message.contains("--datasets"), "{}", err.message);
    }
}
