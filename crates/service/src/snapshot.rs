//! Versioned on-disk snapshots of engine state, so `mithra serve` can
//! restart **without a full re-audit**.
//!
//! A snapshot is a single JSON document (written compactly on one line)
//! carrying everything [`CoverageEngine::from_snapshot_parts`] needs:
//! the schema (names + value dictionaries), the dataset as **unique value
//! combinations with multiplicities**, the shard layout, the configured
//! threshold, the current MUP set, and the maintenance counters. The
//! coverage backend is *not* serialized — it is derived state, rebuilt from
//! the combinations in linear time on load, which keeps the format
//! independent of the bit-vector layout.
//!
//! Format policy (documented in the README):
//!
//! * `"format"` is always `"mithra-coverage-snapshot"`; `"version"` is an
//!   integer, currently [`SNAPSHOT_VERSION`]. Version 5 adds `"backend"` —
//!   the coverage-backend family (`"dense"` or `"compressed"`) the writing
//!   process served with. Like the shard layout, the backend is a *process*
//!   property, not a data property: the combinations restore into whichever
//!   backend the loading process runs (`serve --backend` decides, defaulting
//!   to the recorded value), so snapshots stay backend-agnostic and v1–4
//!   documents simply record `"dense"` semantics. Version 4 adds `"oplog_seq"`
//!   — the op-log sequence number the snapshot is anchored at, so recovery
//!   is "restore snapshot, replay log entries with `seq > oplog_seq`" and a
//!   snapshot-anchored truncation can drop the replayed prefix. Snapshots
//!   written without an op log record 0; versions 1–3 restore with anchor
//!   0. Version 3 adds `"grown"` — the
//!   per-attribute count of values registered through dictionary growth
//!   since load, so a restarted server keeps reporting dictionary growth in
//!   `stats` (the grown dictionaries themselves travel in `"attributes"`,
//!   which always records the *current* value lists). Version 2 stores
//!   `"combos": [[[codes…], count], …]` (compacted — heavily duplicated
//!   datasets shrink by orders of magnitude) plus `"shards"` (the backend's
//!   row-shard layout). Version 1 documents (raw `"rows"`, no layout) are
//!   still read: their rows restore into a single shard (shard 0). Both
//!   older versions restore with zeroed growth counters, and the next
//!   `snapshot` op rewrites the file as the current version. Any *newer*
//!   version is rejected rather than guessed at — bump the version on any
//!   incompatible change.
//! * Snapshots are **trusted input**: the loader validates structure, value
//!   ranges, and arities, but takes the MUP set at its word (re-deriving it
//!   would defeat the purpose). Keep snapshot files as protected as the
//!   dataset itself.
//! * Writes are atomic: the document goes to `<path>.tmp` and is renamed
//!   into place, so a crash mid-write never corrupts the previous snapshot.

use std::fmt::Write as _;
use std::path::Path;

use coverage_core::pattern::Pattern;
use coverage_core::Threshold;
use coverage_data::{Attribute, Dataset, Schema, UniqueCombinations};
use coverage_index::CoverageBackend;

use crate::engine::{CoverageEngine, EngineStats};
use crate::protocol::{write_json_string, Json};
use crate::{Result, ServiceError};

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u64 = 5;

/// Oldest snapshot version this build still reads.
pub const SNAPSHOT_MIN_VERSION: u64 = 1;

/// The `"format"` marker distinguishing snapshots from arbitrary JSON.
pub const SNAPSHOT_FORMAT: &str = "mithra-coverage-snapshot";

fn bad(message: impl Into<String>) -> ServiceError {
    ServiceError::Snapshot(message.into())
}

/// Serializes the engine's durable state to a one-line JSON document.
///
/// # Errors
///
/// Fails for labeled datasets (the serving layer never builds one, and the
/// format deliberately omits labels).
pub fn snapshot_string<B: CoverageBackend>(engine: &CoverageEngine<B>) -> Result<String> {
    snapshot_string_anchored(engine, 0)
}

/// [`snapshot_string`] recording the op-log sequence number the snapshot is
/// anchored at (`"oplog_seq"`): every logged entry with `seq <=
/// oplog_seq` is already reflected in the document, so recovery replays
/// only the tail past it, and the leader may truncate that prefix.
pub fn snapshot_string_anchored<B: CoverageBackend>(
    engine: &CoverageEngine<B>,
    oplog_seq: u64,
) -> Result<String> {
    let dataset = engine.dataset();
    if dataset.is_labeled() {
        return Err(bad("labeled datasets cannot be snapshotted"));
    }
    let combos = UniqueCombinations::from_dataset(dataset);
    let mut out = String::with_capacity(1024 + combos.len() * (dataset.arity() * 4 + 8));
    out.push_str("{\"format\":");
    write_json_string(&mut out, SNAPSHOT_FORMAT);
    let _ = write!(out, ",\"version\":{SNAPSHOT_VERSION},\"backend\":");
    write_json_string(&mut out, engine.oracle().backend_name());
    let _ = write!(
        out,
        ",\"oplog_seq\":{oplog_seq},\"shards\":{},\"grown\":[",
        engine.shards()
    );
    for (i, g) in engine.dictionary_growth().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{g}");
    }
    out.push_str("],\"threshold\":");
    match engine.threshold() {
        Threshold::Count(c) => {
            let _ = write!(out, "{{\"count\":{c}}}");
        }
        Threshold::Fraction(f) => {
            // Rust's shortest-roundtrip float formatting: parses back to the
            // bit-identical f64.
            let _ = write!(out, "{{\"fraction\":{f}}}");
        }
    }
    out.push_str(",\"attributes\":[");
    let schema = dataset.schema();
    for i in 0..schema.arity() {
        if i > 0 {
            out.push(',');
        }
        let attr = schema.attribute(i);
        out.push_str("{\"name\":");
        write_json_string(&mut out, attr.name());
        let _ = write!(out, ",\"cardinality\":{}", attr.cardinality());
        if attr.has_dictionary() {
            out.push_str(",\"values\":[");
            for v in 0..attr.cardinality() {
                if v > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, &attr.value_name(v));
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("],\"combos\":[");
    for (k, (combo, count)) in combos.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str("[[");
        for (i, &v) in combo.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        let _ = write!(out, "],{count}]");
    }
    out.push_str("],\"mups\":[");
    for (i, mup) in engine.mups().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&mut out, &mup.to_string());
    }
    let stats = engine.stats();
    let _ = write!(
        out,
        concat!(
            "],\"stats\":{{\"inserts\":{},\"batches\":{},\"deletes\":{},",
            "\"delete_batches\":{},\"mups_retired\":{},\"mups_discovered\":{},",
            "\"full_recomputes\":{}}}}}"
        ),
        stats.inserts,
        stats.batches,
        stats.deletes,
        stats.delete_batches,
        stats.mups_retired,
        stats.mups_discovered,
        stats.full_recomputes,
    );
    Ok(out)
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json> {
    doc.get(key)
        .ok_or_else(|| bad(format!("snapshot is missing field `{key}`")))
}

fn u64_field(doc: &Json, key: &str) -> Result<u64> {
    field(doc, key)?.as_u64().ok_or_else(|| {
        bad(format!(
            "snapshot field `{key}` must be a non-negative integer"
        ))
    })
}

/// Reassembles an engine from a snapshot document produced by
/// [`snapshot_string`] — current (version 5, with the backend family),
/// version 4 (no backend), version 3 (no op-log anchor), version 2 (no
/// growth counters), or version 1 (raw rows, restored into a single shard).
pub fn parse_snapshot<B: CoverageBackend>(text: &str) -> Result<CoverageEngine<B>> {
    parse_snapshot_with_layout(text, None)
}

/// [`parse_snapshot`] with the shard layout decided by the caller:
/// `shards_override` replaces the snapshot's recorded layout *before* the
/// backend is built, so the index is constructed exactly once (resharding
/// after the fact would build it twice). `None` honors the recorded layout.
pub fn parse_snapshot_with_layout<B: CoverageBackend>(
    text: &str,
    shards_override: Option<usize>,
) -> Result<CoverageEngine<B>> {
    parse_snapshot_anchored(text, shards_override).map(|(engine, _)| engine)
}

/// [`parse_snapshot_with_layout`] that also returns the snapshot's op-log
/// anchor (`"oplog_seq"`; 0 for snapshots written without an op log or by
/// pre-version-4 builds). Recovery replays log entries with `seq` strictly
/// greater than the anchor.
pub fn parse_snapshot_anchored<B: CoverageBackend>(
    text: &str,
    shards_override: Option<usize>,
) -> Result<(CoverageEngine<B>, u64)> {
    let doc = Json::parse(text).map_err(|e| bad(format!("snapshot is not valid JSON: {e}")))?;
    match field(&doc, "format")?.as_str() {
        Some(SNAPSHOT_FORMAT) => {}
        _ => return Err(bad("not a mithra coverage snapshot (bad `format` field)")),
    }
    let version = u64_field(&doc, "version")?;
    if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(bad(format!(
            "snapshot version {version} is not supported (this build reads versions \
             {SNAPSHOT_MIN_VERSION}..={SNAPSHOT_VERSION})"
        )));
    }
    // The recorded backend family is advisory — the combinations restore
    // into whatever backend `B` the caller runs — but a value outside the
    // known families means the document came from a newer build mislabeling
    // itself, so reject rather than guess.
    backend_field(&doc, version)?;
    // v1–3 predate the op log: they restore with anchor 0 (replay the
    // whole log, which is exactly right for a log that started alongside
    // a pre-anchor snapshot).
    let oplog_seq = if version >= 4 {
        u64_field(&doc, "oplog_seq")?
    } else {
        0
    };
    // v1 predates sharding: everything restores into shard 0.
    let recorded = if version >= 2 {
        u64_field(&doc, "shards")?.max(1) as usize
    } else {
        1
    };
    let shards = shards_override.unwrap_or(recorded);
    let threshold_doc = field(&doc, "threshold")?;
    let threshold = match (threshold_doc.get("count"), threshold_doc.get("fraction")) {
        (Some(c), None) => Threshold::Count(
            c.as_u64()
                .ok_or_else(|| bad("threshold `count` must be a non-negative integer"))?,
        ),
        (None, Some(Json::Number(f))) => Threshold::Fraction(*f),
        _ => {
            return Err(bad(
                "threshold must carry exactly one of `count`/`fraction`",
            ))
        }
    };
    let mut attributes = Vec::new();
    for a in field(&doc, "attributes")?
        .as_array()
        .ok_or_else(|| bad("`attributes` must be an array"))?
    {
        let name = a
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("attribute is missing string field `name`"))?;
        let cardinality = u64_field(a, "cardinality")?;
        let attr = match a.get("values") {
            Some(values) => {
                let names: Vec<&str> = values
                    .as_array()
                    .ok_or_else(|| bad("attribute `values` must be an array"))?
                    .iter()
                    .map(|v| v.as_str().ok_or_else(|| bad("value names must be strings")))
                    .collect::<Result<_>>()?;
                if names.len() as u64 != cardinality {
                    return Err(bad(format!(
                        "attribute `{name}`: {} value names but cardinality {cardinality}",
                        names.len()
                    )));
                }
                Attribute::with_values(name, names)
            }
            None => Attribute::new(name, cardinality as usize),
        }
        .map_err(|e| bad(format!("attribute `{name}`: {e}")))?;
        attributes.push(attr);
    }
    let schema = Schema::new(attributes).map_err(|e| bad(format!("bad schema: {e}")))?;
    let arity = schema.arity();
    let mut dataset = Dataset::new(schema);
    let parse_codes = |what: &str, doc: &Json| -> Result<Vec<u8>> {
        doc.as_array()
            .ok_or_else(|| bad(format!("{what} must be an array")))?
            .iter()
            .map(|v| match v.as_u64() {
                Some(code) if code <= u8::MAX as u64 => Ok(code as u8),
                _ => Err(bad(format!("{what} carries a non-u8 value code"))),
            })
            .collect()
    };
    if version >= 2 {
        // Compacted form: [[codes…], multiplicity] per distinct combination.
        for (k, combo_doc) in field(&doc, "combos")?
            .as_array()
            .ok_or_else(|| bad("`combos` must be an array"))?
            .iter()
            .enumerate()
        {
            let pair = combo_doc
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| bad(format!("combo {k} must be a [codes, count] pair")))?;
            let combo = parse_codes(&format!("combo {k}"), &pair[0])?;
            let count = pair[1]
                .as_u64()
                .filter(|&c| c > 0)
                .ok_or_else(|| bad(format!("combo {k} must carry a positive count")))?;
            for _ in 0..count {
                dataset
                    .push_row(&combo)
                    .map_err(|e| bad(format!("combo {k}: {e}")))?;
            }
        }
    } else {
        for (r, row_doc) in field(&doc, "rows")?
            .as_array()
            .ok_or_else(|| bad("`rows` must be an array"))?
            .iter()
            .enumerate()
        {
            let row = parse_codes(&format!("row {r}"), row_doc)?;
            dataset
                .push_row(&row)
                .map_err(|e| bad(format!("row {r}: {e}")))?;
        }
    }
    let mut mups = Vec::new();
    for m in field(&doc, "mups")?
        .as_array()
        .ok_or_else(|| bad("`mups` must be an array"))?
    {
        let text = m
            .as_str()
            .ok_or_else(|| bad("MUPs must be pattern strings"))?;
        let pattern = Pattern::parse(text).map_err(|e| bad(format!("MUP `{text}`: {e}")))?;
        if pattern.arity() != arity {
            return Err(bad(format!(
                "MUP `{text}` has arity {} but the schema has {arity} attributes",
                pattern.arity()
            )));
        }
        mups.push(pattern);
    }
    let stats_doc = field(&doc, "stats")?;
    let stats = EngineStats {
        inserts: u64_field(stats_doc, "inserts")?,
        batches: u64_field(stats_doc, "batches")?,
        deletes: u64_field(stats_doc, "deletes")?,
        delete_batches: u64_field(stats_doc, "delete_batches")?,
        mups_retired: u64_field(stats_doc, "mups_retired")?,
        mups_discovered: u64_field(stats_doc, "mups_discovered")?,
        full_recomputes: u64_field(stats_doc, "full_recomputes")?,
    };
    // v1/v2 predate dictionary growth: counters restore as zeros.
    let grown = if version >= 3 {
        let grown: Vec<u64> = field(&doc, "grown")?
            .as_array()
            .ok_or_else(|| bad("`grown` must be an array"))?
            .iter()
            .map(|g| {
                g.as_u64()
                    .ok_or_else(|| bad("`grown` counters must be non-negative integers"))
            })
            .collect::<Result<_>>()?;
        if grown.len() != arity {
            return Err(bad(format!(
                "{} grown counters but {arity} attributes",
                grown.len()
            )));
        }
        grown
    } else {
        vec![0; arity]
    };
    CoverageEngine::from_snapshot_parts(dataset, threshold, mups, stats, shards, grown)
        .map(|engine| (engine, oplog_seq))
}

/// The backend family a snapshot document records: `"backend"` on v5
/// documents (validated against the known families), `"dense"` on v1–4
/// documents, which predate backend choice.
fn backend_field(doc: &Json, version: u64) -> Result<&'static str> {
    if version >= 5 {
        match field(doc, "backend")?.as_str() {
            Some("dense") => Ok("dense"),
            Some("compressed") => Ok("compressed"),
            Some(other) => Err(bad(format!(
                "snapshot records unknown backend `{other}` (expected `dense` or `compressed`)"
            ))),
            None => Err(bad("snapshot field `backend` must be a string")),
        }
    } else {
        Ok("dense")
    }
}

/// Reads only the backend family a snapshot on disk records (`"dense"` for
/// v1–4 documents) without building any index — the CLI peeks at this to
/// pick the serving backend before the expensive restore.
pub fn snapshot_backend(path: &Path) -> Result<&'static str> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| bad(format!("cannot read {}: {e}", path.display())))?;
    let doc = Json::parse(&text).map_err(|e| bad(format!("snapshot is not valid JSON: {e}")))?;
    match field(&doc, "format")?.as_str() {
        Some(SNAPSHOT_FORMAT) => {}
        _ => return Err(bad("not a mithra coverage snapshot (bad `format` field)")),
    }
    let version = u64_field(&doc, "version")?;
    if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(bad(format!(
            "snapshot version {version} is not supported (this build reads versions \
             {SNAPSHOT_MIN_VERSION}..={SNAPSHOT_VERSION})"
        )));
    }
    backend_field(&doc, version)
}

/// Writes a snapshot atomically: the document lands in `<path>.tmp` first
/// and is renamed over `path`, so a crash mid-write leaves any previous
/// snapshot intact.
pub fn save_snapshot<B: CoverageBackend>(engine: &CoverageEngine<B>, path: &Path) -> Result<()> {
    save_snapshot_anchored(engine, path, 0)
}

/// [`save_snapshot`] recording an op-log anchor (see
/// [`snapshot_string_anchored`]).
pub fn save_snapshot_anchored<B: CoverageBackend>(
    engine: &CoverageEngine<B>,
    path: &Path,
    oplog_seq: u64,
) -> Result<()> {
    let text = snapshot_string_anchored(engine, oplog_seq)?;
    // Append `.tmp` to the full file name (`with_extension` would *replace*
    // the extension — colliding with the target for `--snapshot state.tmp`,
    // and making `prod.a`/`prod.b` in one directory stage through the same
    // `prod.tmp`, either of which breaks the crash-atomicity promise).
    let tmp = {
        let mut name = path.as_os_str().to_os_string();
        name.push(".tmp");
        std::path::PathBuf::from(name)
    };
    let describe = |what: &str, e: std::io::Error| bad(format!("{what} {}: {e}", tmp.display()));
    std::fs::write(&tmp, text.as_bytes()).map_err(|e| describe("cannot write", e))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| bad(format!("cannot move snapshot into {}: {e}", path.display())))?;
    Ok(())
}

/// Loads a snapshot written by [`save_snapshot`].
pub fn load_snapshot<B: CoverageBackend>(path: &Path) -> Result<CoverageEngine<B>> {
    load_snapshot_with_layout(path, None)
}

/// [`load_snapshot`] with a caller-decided shard layout (see
/// [`parse_snapshot_with_layout`]).
pub fn load_snapshot_with_layout<B: CoverageBackend>(
    path: &Path,
    shards_override: Option<usize>,
) -> Result<CoverageEngine<B>> {
    load_snapshot_anchored(path, shards_override).map(|(engine, _)| engine)
}

/// [`load_snapshot_with_layout`] that also returns the op-log anchor (see
/// [`parse_snapshot_anchored`]).
pub fn load_snapshot_anchored<B: CoverageBackend>(
    path: &Path,
    shards_override: Option<usize>,
) -> Result<(CoverageEngine<B>, u64)> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| bad(format!("cannot read {}: {e}", path.display())))?;
    parse_snapshot_anchored(&text, shards_override)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_index::{CoverageOracle, ShardedOracle};

    /// Row multiset of a dataset — snapshot compaction groups duplicate
    /// rows, so restores preserve the multiset, not the row order.
    fn sorted_rows(ds: &Dataset) -> Vec<Vec<u8>> {
        let mut rows: Vec<Vec<u8>> = ds.rows().map(<[u8]>::to_vec).collect();
        rows.sort();
        rows
    }

    fn engine() -> CoverageEngine {
        let schema = Schema::new(vec![
            Attribute::with_values("sex", ["m", "f"]).unwrap(),
            Attribute::with_values("race", ["white", "black", "asian"]).unwrap(),
        ])
        .unwrap();
        let ds =
            Dataset::from_rows(schema, &[vec![0, 0], vec![0, 1], vec![1, 0], vec![0, 0]]).unwrap();
        let mut engine = CoverageEngine::new(ds, Threshold::Count(1)).unwrap();
        engine.insert(&[1, 1]).unwrap();
        engine.remove(&[0, 1]).unwrap();
        engine
    }

    #[test]
    fn round_trip_preserves_everything_durable() {
        let original = engine();
        let text = snapshot_string(&original).unwrap();
        let restored: CoverageEngine = parse_snapshot(&text).unwrap();
        assert_eq!(restored.mups(), original.mups());
        assert_eq!(restored.tau(), original.tau());
        assert_eq!(restored.threshold(), original.threshold());
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.shards(), original.shards());
        assert_eq!(
            sorted_rows(restored.dataset()),
            sorted_rows(original.dataset())
        );
        // And the restored engine keeps serving correctly.
        let mut restored = restored;
        restored.insert(&[1, 2]).unwrap();
        assert!(restored.covered(&[1, 2]).unwrap());
    }

    #[test]
    fn sharded_engines_round_trip_their_layout() {
        let ds = coverage_data::generators::airbnb_like(300, 4, 2).unwrap();
        let original =
            CoverageEngine::<ShardedOracle>::with_shards(ds, Threshold::Count(3), 3).unwrap();
        let restored: CoverageEngine<ShardedOracle> =
            parse_snapshot(&snapshot_string(&original).unwrap()).unwrap();
        assert_eq!(restored.shards(), 3);
        assert_eq!(restored.oracle().shard_count(), 3);
        assert_eq!(restored.mups(), original.mups());
        assert_eq!(
            sorted_rows(restored.dataset()),
            sorted_rows(original.dataset())
        );
    }

    #[test]
    fn fraction_thresholds_round_trip_bit_exactly() {
        let ds = Dataset::from_rows(
            Schema::binary(2).unwrap(),
            &[vec![0, 0], vec![0, 1], vec![1, 0]],
        )
        .unwrap();
        let original = CoverageEngine::new(ds, Threshold::Fraction(0.1 + 0.2)).unwrap();
        let restored: CoverageEngine =
            parse_snapshot(&snapshot_string(&original).unwrap()).unwrap();
        assert_eq!(restored.threshold(), original.threshold());
    }

    #[test]
    fn anonymous_attributes_round_trip() {
        let ds = Dataset::from_rows(
            Schema::with_cardinalities(&[2, 3]).unwrap(),
            &[vec![0, 2], vec![1, 1]],
        )
        .unwrap();
        let original = CoverageEngine::new(ds, Threshold::Count(2)).unwrap();
        let restored: CoverageEngine =
            parse_snapshot(&snapshot_string(&original).unwrap()).unwrap();
        assert_eq!(
            sorted_rows(restored.dataset()),
            sorted_rows(original.dataset())
        );
        assert_eq!(restored.mups(), original.mups());
    }

    #[test]
    fn save_and_load_via_disk() {
        let dir = std::env::temp_dir().join(format!("mithra-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snapshot");
        let original = engine();
        save_snapshot(&original, &path).unwrap();
        let restored: CoverageEngine = load_snapshot(&path).unwrap();
        assert_eq!(restored.mups(), original.mups());
        assert_eq!(
            sorted_rows(restored.dataset()),
            sorted_rows(original.dataset())
        );
        // Overwriting is atomic-by-rename: a second save replaces the first.
        save_snapshot(&restored, &path).unwrap();
        assert!(load_snapshot::<CoverageOracle>(&path).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn staging_file_never_collides_with_the_target() {
        let dir = std::env::temp_dir().join(format!("mithra-snap-tmp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let original = engine();
        // A target that already ends in `.tmp` must not be its own staging
        // file (with_extension would make them identical).
        let path = dir.join("state.tmp");
        save_snapshot(&original, &path).unwrap();
        assert!(load_snapshot::<CoverageOracle>(&path).is_ok());
        assert!(
            !dir.join("state.tmp.tmp").exists(),
            "staging file renamed away"
        );
        // Two snapshots differing only in extension stage through distinct
        // files (prod.a.tmp / prod.b.tmp), not a shared prod.tmp.
        save_snapshot(&original, &dir.join("prod.a")).unwrap();
        save_snapshot(&original, &dir.join("prod.b")).unwrap();
        assert!(!dir.join("prod.tmp").exists());
        assert!(load_snapshot::<CoverageOracle>(&dir.join("prod.a")).is_ok());
        assert!(load_snapshot::<CoverageOracle>(&dir.join("prod.b")).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_wrong_version_and_malformed_documents() {
        let good = snapshot_string(&engine()).unwrap();
        let wrong_version = good.replace(
            &format!("\"version\":{SNAPSHOT_VERSION}"),
            "\"version\":9999",
        );
        let err = parse_snapshot::<CoverageOracle>(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("version 9999"), "{err}");

        for (mutation, needle) in [
            ("not json at all".to_string(), "not valid JSON"),
            ("{}".to_string(), "missing field `format`"),
            (
                good.replace(SNAPSHOT_FORMAT, "something-else"),
                "bad `format`",
            ),
            (good.replace("\"mups\":[", "\"mups\":[\"XXXXX\","), "arity"),
            (
                good.replace("\"combos\":[[[", "\"combos\":[[[9,"),
                "combo 0",
            ),
            (
                good.replace("\"shards\":1", "\"shards\":\"two\""),
                "`shards`",
            ),
        ] {
            let err = parse_snapshot::<CoverageOracle>(&mutation).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{needle}` not in `{err}`"
            );
        }
    }

    #[test]
    fn grown_dictionaries_round_trip_through_version3() {
        let mut original = engine();
        // Grow the race dictionary and land a row on the new value, then
        // grow sex without any rows (the zero-occurrence MUP case).
        original.grow_value(1, "hispanic").unwrap();
        original.insert(&[0, 3]).unwrap();
        original.grow_value(0, "x").unwrap();
        let text = snapshot_string(&original).unwrap();
        assert!(
            text.contains(&format!("\"version\":{SNAPSHOT_VERSION}")),
            "{text}"
        );
        assert!(text.contains("\"grown\":[1,1]"), "{text}");
        let restored: CoverageEngine = parse_snapshot(&text).unwrap();
        assert_eq!(restored.dictionary_growth(), &[1, 1]);
        assert_eq!(restored.mups(), original.mups());
        assert_eq!(
            sorted_rows(restored.dataset()),
            sorted_rows(original.dataset())
        );
        let schema = restored.dataset().schema();
        assert_eq!(schema.cardinalities(), vec![3, 4]);
        assert_eq!(schema.attribute(1).code_of("hispanic").unwrap(), 3);
        assert_eq!(schema.attribute(0).value_name(2), "x");
        // The restored engine keeps growing and serving.
        let mut restored = restored;
        restored.grow_value(1, "other").unwrap();
        assert_eq!(restored.dictionary_growth(), &[1, 2]);
        restored.insert(&[2, 4]).unwrap();
        assert!(restored.covered(&[2, 4]).unwrap());
    }

    #[test]
    fn mismatched_grown_counters_are_rejected() {
        let good = snapshot_string(&engine()).unwrap();
        let bad_len = good.replace("\"grown\":[0,0]", "\"grown\":[0,0,0]");
        let err = parse_snapshot::<CoverageOracle>(&bad_len).unwrap_err();
        assert!(err.to_string().contains("grown counters"), "{err}");
        let bad_type = good.replace("\"grown\":[0,0]", "\"grown\":[0,\"one\"]");
        let err = parse_snapshot::<CoverageOracle>(&bad_type).unwrap_err();
        assert!(err.to_string().contains("non-negative"), "{err}");
    }

    #[test]
    fn oplog_anchor_round_trips_and_defaults_to_zero() {
        let original = engine();
        // Anchorless save records 0.
        let plain = snapshot_string(&original).unwrap();
        assert!(plain.contains("\"oplog_seq\":0"), "{plain}");
        let (_, anchor) = parse_snapshot_anchored::<CoverageOracle>(&plain, None).unwrap();
        assert_eq!(anchor, 0);
        // An anchored save round-trips its sequence number, and the engine
        // state is unchanged by the anchor.
        let anchored = snapshot_string_anchored(&original, 42).unwrap();
        let (restored, anchor) =
            parse_snapshot_anchored::<CoverageOracle>(&anchored, None).unwrap();
        assert_eq!(anchor, 42);
        assert_eq!(restored.mups(), original.mups());
        // A version-4 document without the field is malformed.
        let missing = anchored.replace(",\"oplog_seq\":42", "");
        let err = parse_snapshot::<CoverageOracle>(&missing).unwrap_err();
        assert!(err.to_string().contains("oplog_seq"), "{err}");
    }

    #[test]
    fn version3_documents_restore_with_anchor_zero() {
        // A pre-oplog (version 3) snapshot: growth counters but no
        // `oplog_seq`. It must restore with anchor 0.
        let v3 = concat!(
            "{\"format\":\"mithra-coverage-snapshot\",\"version\":3,\"shards\":1,",
            "\"grown\":[0,0],",
            "\"threshold\":{\"count\":1},",
            "\"attributes\":[{\"name\":\"a\",\"cardinality\":2},",
            "{\"name\":\"b\",\"cardinality\":2}],",
            "\"combos\":[[[0,1],2],[[1,0],1]],",
            "\"mups\":[\"00\"],",
            "\"stats\":{\"inserts\":3,\"batches\":2,\"deletes\":0,",
            "\"delete_batches\":0,\"mups_retired\":1,\"mups_discovered\":2,",
            "\"full_recomputes\":0}}"
        );
        let (restored, anchor) = parse_snapshot_anchored::<CoverageOracle>(v3, None).unwrap();
        assert_eq!(anchor, 0);
        assert_eq!(restored.dataset().len(), 3);
        let rewritten = snapshot_string(&restored).unwrap();
        assert!(rewritten.contains(&format!("\"version\":{SNAPSHOT_VERSION}")));
        assert!(rewritten.contains("\"oplog_seq\":0"));
    }

    #[test]
    fn version2_documents_restore_with_zeroed_growth_counters() {
        // A pre-growth (version 2) snapshot: compacted combos + layout, no
        // `grown` field. It must restore with zeroed counters — grown value
        // dictionaries still travel in `attributes` — and the next save
        // rewrites it as the current version.
        let v2 = concat!(
            "{\"format\":\"mithra-coverage-snapshot\",\"version\":2,\"shards\":2,",
            "\"threshold\":{\"count\":1},",
            "\"attributes\":[{\"name\":\"a\",\"cardinality\":2},",
            "{\"name\":\"b\",\"cardinality\":3,\"values\":[\"x\",\"y\",\"z\"]}],",
            "\"combos\":[[[0,1],2],[[1,0],1]],",
            "\"mups\":[\"X2\"],",
            "\"stats\":{\"inserts\":3,\"batches\":2,\"deletes\":0,",
            "\"delete_batches\":0,\"mups_retired\":1,\"mups_discovered\":2,",
            "\"full_recomputes\":0}}"
        );
        let restored: CoverageEngine<ShardedOracle> = parse_snapshot(v2).unwrap();
        assert_eq!(restored.shards(), 2);
        assert_eq!(restored.dataset().len(), 3);
        assert_eq!(restored.dictionary_growth(), &[0, 0]);
        assert_eq!(restored.mups().len(), 1);
        let rewritten = snapshot_string(&restored).unwrap();
        assert!(rewritten.contains(&format!("\"version\":{SNAPSHOT_VERSION}")));
        assert!(rewritten.contains("\"grown\":[0,0]"));
    }

    #[test]
    fn version1_documents_restore_into_a_single_shard() {
        // A handwritten pre-sharding (version 1) snapshot: raw rows, no
        // layout field. It must restore — into one shard — and the next
        // save must rewrite it as the current compacted version.
        let v1 = concat!(
            "{\"format\":\"mithra-coverage-snapshot\",\"version\":1,",
            "\"threshold\":{\"count\":1},",
            "\"attributes\":[{\"name\":\"a\",\"cardinality\":2},",
            "{\"name\":\"b\",\"cardinality\":2}],",
            "\"rows\":[[0,1],[1,0],[0,1]],",
            "\"mups\":[\"00\",\"11\"],",
            "\"stats\":{\"inserts\":3,\"batches\":2,\"deletes\":0,",
            "\"delete_batches\":0,\"mups_retired\":1,\"mups_discovered\":2,",
            "\"full_recomputes\":0}}"
        );
        let restored: CoverageEngine<ShardedOracle> = parse_snapshot(v1).unwrap();
        assert_eq!(restored.shards(), 1);
        assert_eq!(restored.shard_layout(), vec![3]);
        assert_eq!(restored.dataset().len(), 3);
        assert_eq!(restored.mups().len(), 2);
        assert_eq!(restored.stats().inserts, 3);
        let rewritten = snapshot_string(&restored).unwrap();
        assert!(rewritten.contains(&format!("\"version\":{SNAPSHOT_VERSION}")));
        assert!(rewritten.contains("\"combos\":"));
    }

    #[test]
    fn layout_override_wins_without_a_second_build() {
        let ds = coverage_data::generators::airbnb_like(200, 3, 4).unwrap();
        let original =
            CoverageEngine::<ShardedOracle>::with_shards(ds, Threshold::Count(2), 2).unwrap();
        let text = snapshot_string(&original).unwrap();
        let overridden: CoverageEngine<ShardedOracle> =
            parse_snapshot_with_layout(&text, Some(4)).unwrap();
        assert_eq!(overridden.shards(), 4);
        assert_eq!(overridden.oracle().shard_count(), 4);
        assert_eq!(overridden.mups(), original.mups());
        let honored: CoverageEngine<ShardedOracle> =
            parse_snapshot_with_layout(&text, None).unwrap();
        assert_eq!(honored.shards(), 2);
    }

    #[test]
    fn compaction_shrinks_heavily_duplicated_datasets() {
        // 1,000 copies of two distinct rows: version 1 stored every row
        // verbatim (≥ 6 bytes per row just for `[0,1],`); version 2 stores
        // two combos with counts, so the document stays in the hundreds of
        // bytes no matter how many duplicates arrive.
        let ds = Dataset::from_rows(
            Schema::binary(2).unwrap(),
            &(0..1_000)
                .map(|i| vec![(i % 2) as u8, (i % 2) as u8])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let engine = CoverageEngine::new(ds, Threshold::Count(1)).unwrap();
        let text = snapshot_string(&engine).unwrap();
        let v1_rows_lower_bound = 1_000 * 6;
        assert!(
            text.len() < v1_rows_lower_bound,
            "compacted snapshot ({} bytes) must undercut raw rows (≥ {v1_rows_lower_bound})",
            text.len()
        );
        let restored: CoverageEngine = parse_snapshot(&text).unwrap();
        assert_eq!(restored.dataset().len(), 1_000);
        assert_eq!(restored.mups(), engine.mups());
    }

    #[test]
    fn backend_family_round_trips_and_is_validated() {
        use coverage_index::CompressedOracle;
        // A dense engine records "dense"; a compressed one "compressed".
        let dense_text = snapshot_string(&engine()).unwrap();
        assert!(dense_text.contains("\"backend\":\"dense\""), "{dense_text}");
        let ds = coverage_data::generators::airbnb_like(300, 4, 2).unwrap();
        let compressed = CoverageEngine::<ShardedOracle<CompressedOracle>>::with_shards(
            ds,
            Threshold::Count(3),
            3,
        )
        .unwrap();
        let text = snapshot_string(&compressed).unwrap();
        assert!(text.contains("\"backend\":\"compressed\""), "{text}");
        // Snapshots are backend-agnostic: a compressed-written document
        // restores into a dense engine and vice versa.
        let as_dense: CoverageEngine<ShardedOracle> = parse_snapshot(&text).unwrap();
        assert_eq!(as_dense.shards(), 3);
        assert_eq!(
            sorted_rows(as_dense.dataset()),
            sorted_rows(compressed.dataset())
        );
        let as_compressed: CoverageEngine<ShardedOracle<CompressedOracle>> =
            parse_snapshot(&dense_text).unwrap();
        assert_eq!(as_compressed.mups().len(), engine().mups().len());
        // An unknown family is rejected rather than guessed at.
        let unknown = text.replace("\"backend\":\"compressed\"", "\"backend\":\"columnar\"");
        let err = parse_snapshot::<ShardedOracle>(&unknown).unwrap_err();
        assert!(err.to_string().contains("unknown backend"), "{err}");
        let not_string = text.replace("\"backend\":\"compressed\"", "\"backend\":7");
        let err = parse_snapshot::<ShardedOracle>(&not_string).unwrap_err();
        assert!(err.to_string().contains("`backend`"), "{err}");
    }

    #[test]
    fn snapshot_backend_peeks_without_restoring() {
        use coverage_index::CompressedOracle;
        let dir = std::env::temp_dir().join(format!("mithra-snap-peek-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dense_path = dir.join("dense.snapshot");
        save_snapshot(&engine(), &dense_path).unwrap();
        assert_eq!(snapshot_backend(&dense_path).unwrap(), "dense");
        let ds = coverage_data::generators::airbnb_like(100, 3, 5).unwrap();
        let compressed =
            CoverageEngine::<CompressedOracle>::with_shards(ds, Threshold::Count(2), 1).unwrap();
        let compressed_path = dir.join("compressed.snapshot");
        save_snapshot(&compressed, &compressed_path).unwrap();
        assert_eq!(snapshot_backend(&compressed_path).unwrap(), "compressed");
        assert!(snapshot_backend(&dir.join("missing.snapshot")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version4_documents_restore_as_dense_with_their_anchor() {
        // A pre-backend (version 4) snapshot: op-log anchor but no
        // `backend`. It restores (implicitly dense), keeps its anchor, and
        // the next save rewrites it as the current version.
        let v4 = concat!(
            "{\"format\":\"mithra-coverage-snapshot\",\"version\":4,\"oplog_seq\":17,",
            "\"shards\":2,\"grown\":[0,0],",
            "\"threshold\":{\"count\":1},",
            "\"attributes\":[{\"name\":\"a\",\"cardinality\":2},",
            "{\"name\":\"b\",\"cardinality\":2}],",
            "\"combos\":[[[0,1],2],[[1,0],1]],",
            "\"mups\":[\"00\"],",
            "\"stats\":{\"inserts\":3,\"batches\":2,\"deletes\":0,",
            "\"delete_batches\":0,\"mups_retired\":1,\"mups_discovered\":2,",
            "\"full_recomputes\":0}}"
        );
        let (restored, anchor) = parse_snapshot_anchored::<ShardedOracle>(v4, None).unwrap();
        assert_eq!(anchor, 17);
        assert_eq!(restored.shards(), 2);
        assert_eq!(restored.dataset().len(), 3);
        let rewritten = snapshot_string(&restored).unwrap();
        assert!(rewritten.contains(&format!("\"version\":{SNAPSHOT_VERSION}")));
        assert!(rewritten.contains("\"backend\":\"dense\""));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let good = snapshot_string(&engine()).unwrap();
        let err = parse_snapshot::<CoverageOracle>(&good[..good.len() / 2]).unwrap_err();
        assert!(err.to_string().contains("not valid JSON"), "{err}");
    }
}
