//! The [`IoMode::Event`](crate::IoMode::Event) TCP front end: one thread,
//! a readiness poller, and non-blocking I/O on every connection.
//!
//! ## Why an event loop
//!
//! The blocking pool burns a thread per in-flight connection and — more
//! importantly — hands the engine one request at a time. The engine's
//! delta path makes a *batch* of inserts far cheaper than the same inserts
//! applied one by one (one frontier walk instead of N), but a
//! thread-per-connection design has no natural place to form batches
//! across clients. The event loop does: every poll tick it drains frames
//! from **all** readable connections into one pending queue, then takes
//! the engine lock once and serves the whole tick — coalescing runs of
//! consecutive `insert` requests, *across connections*, into single
//! [`CoverageEngine::insert_batch`] calls and fanning the responses back
//! per request. Under concurrent insert load the engine sees a few large
//! batches per tick instead of hundreds of tiny ones.
//!
//! ## Ordering and equivalence
//!
//! Responses are staged back in decode order, so each connection observes
//! exactly the request/response pipelining the blocking front end gives
//! it. Coalesced inserts report the dataset length *as of their position
//! in the queue* (`len_before + cumulative inserted`), so response bytes
//! are identical to sequential execution — the integration tests assert
//! the two front ends match byte-for-byte.
//!
//! ## Overload behavior
//!
//! Three mechanisms bound resource use, in order of engagement:
//!
//! * **per-tick read cap** — a connection gets at most
//!   [`PER_TICK_READ_BYTES`] of its stream decoded per tick, so one
//!   firehose client cannot starve the rest;
//! * **admission control** — at most `options.max_pending()` requests are
//!   admitted per tick; beyond that, requests are answered immediately
//!   with an `overloaded` error (cheap to produce, no engine work) and
//!   counted in `stats.io.shed_overloaded`;
//! * **write backpressure** — a connection whose response backlog exceeds
//!   [`MAX_WRITE_BACKLOG`] stops being *read* (its poller interest drops
//!   to write-only) until the peer drains what it already owes.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use coverage_index::CoverageBackend;

use crate::engine::CoverageEngine;
use crate::metrics::{OpClass, ServeMetrics};
use crate::net::{Interest, Poller};
use crate::oplog::LoggedOp;
use crate::protocol::{
    error_response, parse_request, Envelope, ErrorCode, Request, RequestId, ServeError,
};
use crate::server::{
    append_failed_error, append_skipped_error, delete_response, dispatch, encode_row,
    insert_response, line_too_long_error, op_class, sync_oplog_batch, with_engine_contained,
    ServeOptions, IDLE_TIMEOUT, MAX_LINE_BYTES,
};
use crate::tenant::{resolve_tenant, DatasetCounters};

/// Poller token reserved for the listener (connection tokens encode a slab
/// index in their low 32 bits, bounded far below this).
const LISTENER: u64 = u64::MAX;

/// Hard cap on simultaneously open connections; beyond it new accepts are
/// closed immediately (fd exhaustion otherwise takes the listener down).
const MAX_CONNECTIONS: usize = 16_384;

/// Most bytes decoded from one connection in one tick.
const PER_TICK_READ_BYTES: usize = 256 * 1024;

/// Response backlog above which a connection stops being read.
const MAX_WRITE_BACKLOG: usize = 1 << 20;

/// How often idle connections are swept.
const SWEEP_INTERVAL: Duration = Duration::from_secs(30);

/// An incremental NDJSON frame decoder over a connection's byte stream.
///
/// Bytes arrive in arbitrary fragments; frames are complete lines. A line
/// that grows past [`MAX_LINE_BYTES`] without a newline flips the decoder
/// into discard mode: the oversized tail is dropped as it streams in
/// (bounded memory) and the eventual newline yields one [`Frame::TooLong`]
/// so the client still gets its error response and the stream stays in
/// sync — the same resync contract as the blocking reader.
#[derive(Debug, Default)]
struct FrameDecoder {
    buf: Vec<u8>,
    discarding: bool,
}

/// One decoded frame.
#[derive(Debug, PartialEq, Eq)]
enum Frame {
    /// A complete request line (newline stripped, lossy UTF-8).
    Line(String),
    /// A line that exceeded [`MAX_LINE_BYTES`] (content discarded).
    TooLong,
}

impl FrameDecoder {
    /// Feeds freshly-read bytes into the decoder.
    fn push(&mut self, bytes: &[u8]) {
        if self.discarding {
            // Keep only bytes from the newline onward (if one arrived).
            match bytes.iter().position(|&b| b == b'\n') {
                Some(pos) => self.buf.extend_from_slice(&bytes[pos..]),
                None => return,
            }
        } else {
            self.buf.extend_from_slice(bytes);
        }
        if !self.discarding && self.buf.len() > MAX_LINE_BYTES && !self.buf.contains(&b'\n') {
            self.buf.clear();
            self.discarding = true;
        }
    }

    /// Pops the next complete frame, if one is buffered.
    fn next_frame(&mut self) -> Option<Frame> {
        let pos = self.buf.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
        line.pop(); // the newline
        if self.discarding {
            self.discarding = false;
            return Some(Frame::TooLong);
        }
        if line.len() > MAX_LINE_BYTES {
            return Some(Frame::TooLong);
        }
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(Frame::Line(String::from_utf8_lossy(&line).into_owned()))
    }

    /// Flushes the final unterminated frame at EOF (served like the
    /// blocking reader serves an unterminated last line).
    fn finish(&mut self) -> Option<Frame> {
        if self.discarding {
            self.discarding = false;
            self.buf.clear();
            return Some(Frame::TooLong);
        }
        if self.buf.is_empty() {
            return None;
        }
        let mut line = std::mem::take(&mut self.buf);
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(Frame::Line(String::from_utf8_lossy(&line).into_owned()))
    }

    /// Whether any undecoded bytes remain buffered.
    fn is_empty(&self) -> bool {
        self.buf.is_empty() && !self.discarding
    }
}

/// Per-connection state in the slab.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Staged response bytes awaiting the socket.
    out: Vec<u8>,
    /// How much of `out` has been written.
    out_pos: usize,
    /// Generation stamped into this connection's token: a response routed
    /// by a stale token (its connection died and the slab slot was reused)
    /// fails the generation check and is discarded instead of being
    /// delivered to the wrong client.
    gen: u32,
    interest: Interest,
    eof: bool,
    dead: bool,
    last_active: Instant,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.eof && self.backlog() < MAX_WRITE_BACKLOG,
            writable: self.backlog() > 0,
        }
    }
}

fn token_of(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

fn split_token(token: u64) -> (usize, u32) {
    ((token & u64::from(u32::MAX)) as usize, (token >> 32) as u32)
}

/// One hosted dataset as the event loop sees it: name for routing, engine,
/// per-tenant options (snapshot/op-log paths), and the per-dataset request
/// counter (multi-dataset mode only).
pub(crate) struct EventTenant<B: CoverageBackend> {
    /// Routing name; `None` for the single unnamed dataset of a plain
    /// `serve` call (any `"dataset"` routing then answers an error).
    pub name: Option<String>,
    /// The engine serving this dataset.
    pub engine: Arc<Mutex<CoverageEngine<B>>>,
    /// This dataset's serving options.
    pub options: ServeOptions,
    /// Per-dataset request counter (set up by `serve_tenants`).
    pub counters: Option<Arc<DatasetCounters>>,
}

/// One queued unit of work for the drain phase.
struct PendingItem {
    token: u64,
    op: OpClass,
    start: Instant,
    kind: PendingKind,
}

enum PendingKind {
    /// A parsed request that needs the engine of tenant `tenant`.
    Op {
        tenant: usize,
        id: Option<RequestId>,
        request: Request,
    },
    /// A response already in final form (parse error, oversized line,
    /// unknown dataset, admission shed) — flows through the queue so
    /// per-connection response order matches request order.
    Ready(String),
}

/// An engine-bound request, tagged with its slot in the tick's response
/// vector and the tenant it routes to.
struct OpWork {
    slot: usize,
    tenant: usize,
    id: Option<RequestId>,
    request: Request,
}

fn overloaded_error(max_pending: usize) -> ServeError {
    ServeError::new(
        ErrorCode::Overloaded,
        format!("server overloaded: more than {max_pending} requests queued; retry"),
    )
}

/// Serves one connection's freshly-readable bytes: decode frames, parse
/// them (no engine needed), and queue work. Returns `false` if the
/// connection errored and must be torn down.
#[allow(clippy::too_many_arguments)]
fn read_ready(
    conn: &mut Conn,
    token: u64,
    names: &[Option<String>],
    max_pending: usize,
    admitted: &mut usize,
    pending: &mut Vec<PendingItem>,
    metrics: &ServeMetrics,
) -> bool {
    let mut chunk = [0u8; 8192];
    let mut read_total = 0usize;
    loop {
        if conn.eof || read_total >= PER_TICK_READ_BYTES {
            break;
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
            }
            Ok(n) => {
                read_total += n;
                conn.decoder.push(&chunk[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
        // Drain every complete frame the new bytes produced before the
        // next read: the decoder buffer stays bounded by one frame.
        while let Some(frame) = conn.decoder.next_frame() {
            queue_frame(frame, token, names, max_pending, admitted, pending, metrics);
        }
    }
    if conn.eof {
        if let Some(frame) = conn.decoder.finish() {
            queue_frame(frame, token, names, max_pending, admitted, pending, metrics);
        }
    }
    true
}

/// Turns one decoded frame into a pending item (or drops blank lines).
#[allow(clippy::too_many_arguments)]
fn queue_frame(
    frame: Frame,
    token: u64,
    names: &[Option<String>],
    max_pending: usize,
    admitted: &mut usize,
    pending: &mut Vec<PendingItem>,
    metrics: &ServeMetrics,
) {
    let start = Instant::now();
    let item = match frame {
        Frame::TooLong => PendingItem {
            token,
            op: OpClass::Other,
            start,
            kind: PendingKind::Ready(error_response(None, &line_too_long_error())),
        },
        Frame::Line(line) => {
            if line.trim().is_empty() {
                return;
            }
            match parse_request(&line) {
                Err(failure) => PendingItem {
                    token,
                    op: OpClass::Other,
                    start,
                    kind: PendingKind::Ready(error_response(failure.id.as_ref(), &failure.error)),
                },
                Ok(Envelope {
                    id,
                    dataset,
                    request,
                }) => match resolve_tenant(names, dataset.as_deref()) {
                    Err(error) => PendingItem {
                        token,
                        op: OpClass::Other,
                        start,
                        kind: PendingKind::Ready(error_response(id.as_ref(), &error)),
                    },
                    Ok(tenant) => {
                        if *admitted >= max_pending {
                            ServeMetrics::add(&metrics.shed_overloaded, 1);
                            PendingItem {
                                token,
                                op: OpClass::Other,
                                start,
                                kind: PendingKind::Ready(error_response(
                                    id.as_ref(),
                                    &overloaded_error(max_pending),
                                )),
                            }
                        } else {
                            *admitted += 1;
                            PendingItem {
                                token,
                                op: op_class(&request),
                                start,
                                kind: PendingKind::Op {
                                    tenant,
                                    id,
                                    request,
                                },
                            }
                        }
                    }
                },
            }
        }
    };
    pending.push(item);
}

/// One op-log append deferred out of the engine-lock scope: the pending
/// slot whose success response must be revoked if the append later fails,
/// the request id to echo in that case, and the op itself. Deferral keeps
/// blocking log I/O outside the engine lock while preserving log order
/// (entries are staged in exactly the order the engine applied them).
pub(crate) struct DeferredAppend {
    slot: usize,
    id: Option<RequestId>,
    op: LoggedOp,
}

/// Stages one accepted mutation for the post-engine-lock append pass.
/// No-op without a configured op log.
fn defer_mutation(
    options: &ServeOptions,
    deferred: &mut Vec<DeferredAppend>,
    slot: usize,
    id: &Option<RequestId>,
    op: impl FnOnce() -> LoggedOp,
) {
    if options.oplog().is_some() {
        deferred.push(DeferredAppend {
            slot,
            id: id.clone(),
            op: op(),
        });
    }
}

/// Appends a batch of staged mutations to the op log under one lock
/// acquisition, stopping at the first failure: the failing entry *and*
/// every later one answer an `internal` error (their engine effects
/// stand, but none of them reached the log), so the log stays a true
/// prefix of the acknowledged mutation sequence — appending past a hole
/// would let follower replay diverge from the leader (a logged delete of
/// rows whose insert fell in the hole, for example). Returns the
/// `(slot, response)` revocations the caller applies over the staged
/// successes; empty without a configured op log.
fn append_deferred(options: &ServeOptions, deferred: Vec<DeferredAppend>) -> Vec<(usize, String)> {
    let mut revoked = Vec::new();
    if deferred.is_empty() {
        return revoked;
    }
    let Some(oplog) = options.oplog() else {
        return revoked;
    };
    let mut log = match oplog.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut failed: Option<String> = None;
    for DeferredAppend { slot, id, op } in deferred {
        if let Some(cause) = &failed {
            revoked.push((
                slot,
                error_response(id.as_ref(), &append_skipped_error(cause)),
            ));
            continue;
        }
        // LINT-ALLOW(lock-across-blocking): batched appends under one oplog lock acquisition; the oplog lock is what serializes the log
        if let Err(e) = log.append(op) {
            let cause = e.to_string();
            revoked.push((
                slot,
                error_response(id.as_ref(), &append_failed_error(&cause)),
            ));
            failed = Some(cause);
        }
    }
    revoked
}

/// Runs one uncoalesced request and bumps the batching counters when it
/// was a successful insert or delete. Accepted mutations are staged into
/// `deferred` (tagged with `slot`), not appended here.
fn dispatch_counted<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    options: &ServeOptions,
    metrics: &ServeMetrics,
    slot: usize,
    id: Option<&RequestId>,
    request: Request,
    deferred: &mut Vec<DeferredAppend>,
) -> String {
    let class = op_class(&request);
    let mut staged = Vec::new();
    let response = match dispatch(
        engine,
        options,
        id,
        request,
        Some(metrics),
        Some(&mut staged),
    ) {
        Ok(response) => response,
        Err(error) => error_response(id, &error),
    };
    for (id, op) in staged {
        deferred.push(DeferredAppend { slot, id, op });
    }
    if response.starts_with("{\"ok\":true") {
        match class {
            OpClass::Insert => {
                ServeMetrics::add(&metrics.insert_requests, 1);
                ServeMetrics::add(&metrics.insert_engine_batches, 1);
            }
            OpClass::Delete => {
                ServeMetrics::add(&metrics.delete_requests, 1);
                ServeMetrics::add(&metrics.delete_engine_batches, 1);
            }
            OpClass::Other => {}
        }
    }
    response
}

/// A coalesced-run entry: `(slot, id, raw rows, coded rows)` for requests
/// that encoded, or the finished error response for ones that did not.
/// The raw rows ride along so the op log records what the client sent.
type RunEntry = Result<(usize, Option<RequestId>, Vec<Vec<String>>, Vec<Vec<u8>>), (usize, String)>;

/// Encodes every request of a run up front; per-request encoding failures
/// answer their own error and take no part in the combined batch.
fn encode_run<B: CoverageBackend>(
    engine: &CoverageEngine<B>,
    run: &mut Vec<OpWork>,
) -> Vec<RunEntry> {
    let schema = engine.dataset().schema();
    run.drain(..)
        .map(|op| {
            let OpWork {
                slot, id, request, ..
            } = op;
            let rows = match request {
                Request::Insert { rows } | Request::Delete { rows } => rows,
                _ => unreachable!("coalesced runs hold only inserts or deletes"),
            };
            match rows
                .iter()
                .map(|r| encode_row(schema, r))
                .collect::<Result<Vec<Vec<u8>>, ServeError>>()
            {
                Ok(coded) => Ok((slot, id, rows, coded)),
                Err(e) => Err((slot, error_response(id.as_ref(), &e))),
            }
        })
        .collect()
}

/// Serves a run of ≥1 consecutive insert requests (coalescing them into
/// one engine batch when there is more than one), appending `(slot,
/// response)` pairs in run order.
fn flush_insert_run<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    options: &ServeOptions,
    metrics: &ServeMetrics,
    run: &mut Vec<OpWork>,
    out: &mut Vec<(usize, String)>,
    deferred: &mut Vec<DeferredAppend>,
) {
    if run.is_empty() {
        return;
    }
    if run.len() == 1 {
        let Some(OpWork {
            slot, id, request, ..
        }) = run.pop()
        else {
            return;
        };
        out.push((
            slot,
            dispatch_counted(
                engine,
                options,
                metrics,
                slot,
                id.as_ref(),
                request,
                deferred,
            ),
        ));
        return;
    }
    let entries = encode_run(engine, run);
    let combined: Vec<Vec<u8>> = entries
        .iter()
        .filter_map(|e| e.as_ref().ok())
        .flat_map(|(_, _, _, coded)| coded.iter().cloned())
        .collect();
    let served = entries.iter().filter(|e| e.is_ok()).count();
    let len_before = engine.dataset().len();
    match engine.insert_batch(&combined) {
        Ok(()) => {
            // One engine batch answered `served` requests: fan responses
            // back with the dataset length each would have observed had it
            // run alone, in queue order — byte-identical to sequential.
            // The op log gets one entry per logical request, same order.
            let mut rows_so_far = len_before;
            for entry in entries {
                match entry {
                    Ok((slot, id, raw, coded)) => {
                        rows_so_far += coded.len();
                        defer_mutation(options, deferred, slot, &id, || LoggedOp::Insert {
                            rows: raw,
                        });
                        out.push((slot, insert_response(id.as_ref(), coded.len(), rows_so_far)));
                    }
                    Err((slot, response)) => out.push((slot, response)),
                }
            }
            if served > 0 {
                ServeMetrics::add(&metrics.insert_engine_batches, 1);
                ServeMetrics::add(&metrics.insert_requests, served as u64);
                if served > 1 {
                    ServeMetrics::add(&metrics.coalesced_inserts, served as u64);
                }
            }
        }
        Err(_) => {
            // The combined batch was rejected as a whole (can't normally
            // happen with pre-encoded rows, but the engine's verdict is
            // authoritative): replay per request so each gets the exact
            // verdict sequential execution would have given it.
            for entry in entries {
                match entry {
                    Ok((slot, id, raw, coded)) => match engine.insert_batch(&coded) {
                        Ok(()) => {
                            ServeMetrics::add(&metrics.insert_requests, 1);
                            ServeMetrics::add(&metrics.insert_engine_batches, 1);
                            defer_mutation(options, deferred, slot, &id, || LoggedOp::Insert {
                                rows: raw,
                            });
                            out.push((
                                slot,
                                insert_response(id.as_ref(), coded.len(), engine.dataset().len()),
                            ));
                        }
                        Err(e) => out.push((
                            slot,
                            error_response(id.as_ref(), &ServeError::from_service(e)),
                        )),
                    },
                    Err((slot, response)) => out.push((slot, response)),
                }
            }
        }
    }
}

/// Serves a run of ≥1 consecutive delete requests, mirroring
/// [`flush_insert_run`]: one `remove_batch` when the run coalesces, with
/// per-request responses reconstructed byte-identically to sequential
/// execution (`rows` counts down as each request's deletions land).
fn flush_delete_run<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    options: &ServeOptions,
    metrics: &ServeMetrics,
    run: &mut Vec<OpWork>,
    out: &mut Vec<(usize, String)>,
    deferred: &mut Vec<DeferredAppend>,
) {
    if run.is_empty() {
        return;
    }
    if run.len() == 1 {
        let Some(OpWork {
            slot, id, request, ..
        }) = run.pop()
        else {
            return;
        };
        out.push((
            slot,
            dispatch_counted(
                engine,
                options,
                metrics,
                slot,
                id.as_ref(),
                request,
                deferred,
            ),
        ));
        return;
    }
    let entries = encode_run(engine, run);
    let combined: Vec<Vec<u8>> = entries
        .iter()
        .filter_map(|e| e.as_ref().ok())
        .flat_map(|(_, _, _, coded)| coded.iter().cloned())
        .collect();
    let served = entries.iter().filter(|e| e.is_ok()).count();
    let len_before = engine.dataset().len();
    match engine.remove_batch(&combined) {
        Ok(()) => {
            let mut rows_so_far = len_before;
            for entry in entries {
                match entry {
                    Ok((slot, id, raw, coded)) => {
                        rows_so_far -= coded.len();
                        defer_mutation(options, deferred, slot, &id, || LoggedOp::Delete {
                            rows: raw,
                        });
                        out.push((slot, delete_response(id.as_ref(), coded.len(), rows_so_far)));
                    }
                    Err((slot, response)) => out.push((slot, response)),
                }
            }
            if served > 0 {
                ServeMetrics::add(&metrics.delete_engine_batches, 1);
                ServeMetrics::add(&metrics.delete_requests, served as u64);
                if served > 1 {
                    ServeMetrics::add(&metrics.coalesced_deletes, served as u64);
                }
            }
        }
        Err(_) => {
            // The combined batch was rejected atomically — and for deletes
            // this is a *real* path, not just a safety net: two requests
            // each deleting the last copy of the same row fail combined
            // (multiplicity check) but sequentially the first succeeds and
            // the second answers `row_not_found`. Replay per request so
            // every response matches sequential execution exactly.
            for entry in entries {
                match entry {
                    Ok((slot, id, raw, coded)) => match engine.remove_batch(&coded) {
                        Ok(()) => {
                            ServeMetrics::add(&metrics.delete_requests, 1);
                            ServeMetrics::add(&metrics.delete_engine_batches, 1);
                            defer_mutation(options, deferred, slot, &id, || LoggedOp::Delete {
                                rows: raw,
                            });
                            out.push((
                                slot,
                                delete_response(id.as_ref(), coded.len(), engine.dataset().len()),
                            ));
                        }
                        Err(e) => out.push((
                            slot,
                            error_response(id.as_ref(), &ServeError::from_service(e)),
                        )),
                    },
                    Err((slot, response)) => out.push((slot, response)),
                }
            }
        }
    }
}

/// What kind of coalesced run an op can join.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RunKind {
    Insert,
    Delete,
}

/// Serves every engine-bound request of one tick, coalescing consecutive
/// runs of inserts (when dictionary growth is off — growth encoding
/// mutates the schema mid-run, so growth mode serves inserts
/// individually) and of deletes (always: deletes never grow the schema).
///
/// Op-log appends are *not* performed here: every accepted mutation is
/// staged in the returned [`DeferredAppend`] list, in engine-apply order,
/// for the event loop to append after the engine lock drops — blocking
/// log I/O stays out of the engine-lock scope on the mutation hot path.
/// The one exception is a mid-segment `snapshot`, which drains the staged
/// appends inline so the anchor it reads covers them (see the dispatch
/// below).
fn process_ops<B: CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    options: &ServeOptions,
    metrics: &ServeMetrics,
    ops: Vec<OpWork>,
) -> (Vec<(usize, String)>, Vec<DeferredAppend>) {
    let mut out = Vec::with_capacity(ops.len());
    let mut deferred: Vec<DeferredAppend> = Vec::new();
    let mut run: Vec<OpWork> = Vec::new();
    let mut run_kind: Option<RunKind> = None;
    let flush_run = |engine: &mut CoverageEngine<B>,
                     kind: Option<RunKind>,
                     run: &mut Vec<OpWork>,
                     out: &mut Vec<(usize, String)>,
                     deferred: &mut Vec<DeferredAppend>| match kind {
        Some(RunKind::Insert) => flush_insert_run(engine, options, metrics, run, out, deferred),
        Some(RunKind::Delete) => flush_delete_run(engine, options, metrics, run, out, deferred),
        None => {}
    };
    for op in ops {
        let kind = match &op.request {
            Request::Insert { .. } if !options.grow_schema() => Some(RunKind::Insert),
            Request::Delete { .. } => Some(RunKind::Delete),
            _ => None,
        };
        if kind.is_some() && kind == run_kind {
            run.push(op);
            continue;
        }
        flush_run(engine, run_kind.take(), &mut run, &mut out, &mut deferred);
        match kind {
            Some(k) => {
                run_kind = Some(k);
                run.push(op);
            }
            None => {
                let OpWork {
                    slot, id, request, ..
                } = op;
                // A snapshot anchors to the op log's last appended seq and
                // truncates through it — but mutations this segment already
                // applied are still *staged*, not appended, so the anchor
                // would exclude state the snapshot captures and recovery or
                // follower snapshot-sync would replay (double-apply) them.
                // Drain the staged appends into the log first; any append
                // failure revokes its op before the snapshot observes it.
                // Rare and operator-initiated, and engine→oplog is the same
                // acquisition order the inline blocking path uses.
                if matches!(request, Request::Snapshot) && !deferred.is_empty() {
                    out.append(&mut append_deferred(options, std::mem::take(&mut deferred)));
                }
                out.push((
                    slot,
                    dispatch_counted(
                        engine,
                        options,
                        metrics,
                        slot,
                        id.as_ref(),
                        request,
                        &mut deferred,
                    ),
                ));
            }
        }
    }
    flush_run(engine, run_kind.take(), &mut run, &mut out, &mut deferred);
    (out, deferred)
}

/// Flushes as much of `conn.out` as the socket will take. Returns `false`
/// on a connection error.
fn flush(conn: &mut Conn) -> bool {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return false,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    }
    true
}

/// The event-driven front end behind [`crate::serve`] with
/// [`IoMode::Event`](crate::IoMode::Event): the single-dataset case of
/// [`serve_event_tenants`]. Runs until the listener or poller fails.
pub(crate) fn serve_event<B: CoverageBackend>(
    engine: Arc<Mutex<CoverageEngine<B>>>,
    options: ServeOptions,
    listener: TcpListener,
) -> io::Result<()> {
    serve_event_tenants(
        vec![EventTenant {
            name: None,
            engine,
            options,
            counters: None,
        }],
        listener,
    )
}

/// The event loop proper, hosting one or more datasets. Shared machinery —
/// poller, connection slab, admission budget (`max_pending` read from
/// tenant 0), I/O metrics — is per-process; each tick's engine-bound ops
/// are split into maximal runs of consecutive same-tenant requests and
/// each run is served under that tenant's engine lock (so cross-connection
/// coalescing still happens within a tenant, and tenants can't corrupt
/// each other: panic containment rebuilds only the tenant that panicked).
pub(crate) fn serve_event_tenants<B: CoverageBackend>(
    tenants: Vec<EventTenant<B>>,
    listener: TcpListener,
) -> io::Result<()> {
    assert!(!tenants.is_empty(), "serve_event_tenants needs >= 1 tenant");
    let names: Vec<Option<String>> = tenants.iter().map(|t| t.name.clone()).collect();
    let max_pending = tenants[0].options.max_pending();
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), LISTENER, Interest::READ)?;

    let metrics = ServeMetrics::default();
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_gen: u32 = 0;
    let mut live = 0usize;

    let mut events = Vec::new();
    let mut pending: Vec<PendingItem> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut accept_failures = 0u32;
    let mut last_sweep = Instant::now();

    loop {
        poller.wait(&mut events, 1000)?;
        let now = Instant::now();
        let mut admitted = 0usize;

        for event in &events {
            if event.token == LISTENER {
                // Drain the accept queue; level-triggering re-reports any
                // leftovers next tick.
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            accept_failures = 0;
                            if live >= MAX_CONNECTIONS || stream.set_nonblocking(true).is_err() {
                                drop(stream); // shed
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            next_gen = next_gen.wrapping_add(1);
                            let idx = free.pop().unwrap_or_else(|| {
                                conns.push(None);
                                conns.len() - 1
                            });
                            let token = token_of(idx, next_gen);
                            if poller
                                .register(stream.as_raw_fd(), token, Interest::READ)
                                .is_err()
                            {
                                free.push(idx);
                                continue;
                            }
                            ServeMetrics::add(&metrics.connections, 1);
                            live += 1;
                            conns[idx] = Some(Conn {
                                stream,
                                decoder: FrameDecoder::default(),
                                out: Vec::new(),
                                out_pos: 0,
                                gen: next_gen,
                                interest: Interest::READ,
                                eof: false,
                                dead: false,
                                last_active: now,
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => {
                            // Transient accept failures (ECONNABORTED,
                            // EMFILE) recur fast; a listener that stays
                            // broken must surface, not zombify.
                            accept_failures += 1;
                            if accept_failures >= 100 {
                                return Err(e);
                            }
                            break;
                        }
                    }
                }
                continue;
            }
            let (idx, gen) = split_token(event.token);
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != gen || conn.dead {
                continue;
            }
            conn.last_active = now;
            if event.readable
                && !read_ready(
                    conn,
                    event.token,
                    &names,
                    max_pending,
                    &mut admitted,
                    &mut pending,
                    &metrics,
                )
            {
                conn.dead = true;
            }
            if event.writable && !conn.dead && !flush(conn) {
                conn.dead = true;
            }
            touched.push(idx);
        }

        if !pending.is_empty() {
            // Split the tick's queue: preformed responses fill their slots
            // now; engine-bound ops run under one lock acquisition and one
            // panic-containment scope.
            let mut slots: Vec<Option<String>> = Vec::with_capacity(pending.len());
            slots.resize_with(pending.len(), || None);
            let mut ops: Vec<OpWork> = Vec::new();
            for (slot, item) in pending.iter_mut().enumerate() {
                match &mut item.kind {
                    PendingKind::Ready(response) => {
                        slots[slot] = Some(std::mem::take(response));
                    }
                    PendingKind::Op {
                        tenant,
                        id,
                        request,
                    } => {
                        // Move the op out; the queue keeps token/op/start
                        // for routing and latency accounting.
                        let tenant = *tenant;
                        let id = id.take();
                        let request = std::mem::replace(request, Request::Stats);
                        ops.push(OpWork {
                            slot,
                            tenant,
                            id,
                            request,
                        });
                    }
                }
            }
            // Serve the tick's ops in maximal runs of consecutive
            // same-tenant requests, each under its own tenant's engine
            // lock. If a run panics mid-batch, every op of that run
            // answers an internal error (that tenant's engine was
            // rebuilt); other tenants' runs and already-formed responses
            // stay intact.
            let mut ops = ops.into_iter().peekable();
            while let Some(first) = ops.next() {
                let tenant = &tenants[first.tenant];
                let mut segment = vec![first];
                while let Some(op) = ops.next_if(|op| op.tenant == segment[0].tenant) {
                    segment.push(op);
                }
                if let Some(counters) = &tenant.counters {
                    counters.add_requests(segment.len() as u64);
                }
                let failure_meta: Vec<(usize, Option<RequestId>)> =
                    segment.iter().map(|op| (op.slot, op.id.clone())).collect();
                let (results, deferred) = with_engine_contained(
                    &tenant.engine,
                    |error| {
                        let responses = failure_meta
                            .iter()
                            .map(|(slot, id)| (*slot, error_response(id.as_ref(), &error)))
                            .collect();
                        (responses, Vec::new())
                    },
                    // LINT-ALLOW(lock-across-blocking): the event loop defers every append — the inline log path is unreachable here
                    |engine| process_ops(engine, &tenant.options, &metrics, segment),
                );
                for (slot, response) in results {
                    slots[slot] = Some(response);
                }
                // Append the segment's accepted mutations now, after the
                // engine lock dropped, under one oplog lock acquisition.
                // The first append failure revokes that op's success
                // response *and* every later staged op's (none of which is
                // appended), so the log is a true prefix of the
                // acknowledged mutation sequence — see `append_deferred`.
                for (slot, response) in append_deferred(&tenant.options, deferred) {
                    slots[slot] = Some(response);
                }
            }
            // One durability point per tick per tenant: everything the
            // tick appended to an op log is fsynced (under the default
            // batch policy) before any of the tick's responses go out.
            for tenant in &tenants {
                sync_oplog_batch(&tenant.options);
            }
            // Stage responses in decode order so each connection sees its
            // own requests answered strictly in the order it sent them.
            for (slot, item) in pending.iter().enumerate() {
                let Some(response) = slots[slot].take() else {
                    continue;
                };
                metrics.record(item.op, item.start.elapsed().as_nanos() as u64);
                let (idx, gen) = split_token(item.token);
                // A connection that died mid-tick (or was already replaced
                // in the slab) simply drops its responses — the engine
                // effects stand, exactly as with a blocking worker whose
                // peer vanished after the write succeeded.
                let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                    continue;
                };
                if conn.gen != gen || conn.dead {
                    continue;
                }
                conn.out.extend_from_slice(response.as_bytes());
                conn.out.push(b'\n');
                conn.last_active = now;
                touched.push(idx);
            }
            pending.clear();
        }

        // Finalize every connection the tick touched: push bytes, close
        // finished/broken ones, reconcile poller interest for the rest.
        touched.sort_unstable();
        touched.dedup();
        for idx in touched.drain(..) {
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            if !conn.dead && conn.backlog() > 0 && !flush(conn) {
                conn.dead = true;
            }
            let finished = conn.eof && conn.backlog() == 0 && conn.decoder.is_empty();
            if conn.dead || finished {
                if let Some(conn) = conns[idx].take() {
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                }
                free.push(idx);
                live -= 1;
                continue;
            }
            let desired = conn.desired_interest();
            if desired != conn.interest {
                let token = token_of(idx, conn.gen);
                if poller
                    .reregister(conn.stream.as_raw_fd(), token, desired)
                    .is_ok()
                {
                    conn.interest = desired;
                } else {
                    conn.dead = true;
                }
            }
        }

        if now.duration_since(last_sweep) >= SWEEP_INTERVAL {
            last_sweep = now;
            for (idx, slot) in conns.iter_mut().enumerate() {
                let idle = slot
                    .as_ref()
                    .is_some_and(|conn| now.duration_since(conn.last_active) > IDLE_TIMEOUT);
                if idle {
                    if let Some(conn) = slot.take() {
                        let _ = poller.deregister(conn.stream.as_raw_fd());
                    }
                    free.push(idx);
                    live -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::Threshold;
    use coverage_data::{Attribute, Dataset, Schema};
    use std::io::{BufRead, BufReader};

    fn decode_all(decoder: &mut FrameDecoder) -> Vec<Frame> {
        let mut frames = Vec::new();
        while let Some(frame) = decoder.next_frame() {
            frames.push(frame);
        }
        frames
    }

    #[test]
    fn decoder_reassembles_fragmented_frames() {
        let mut d = FrameDecoder::default();
        d.push(b"{\"op\":");
        assert!(decode_all(&mut d).is_empty());
        d.push(b"\"stats\"}\r\n{\"op\":\"mups\"}\n{\"op\":");
        assert_eq!(
            decode_all(&mut d),
            vec![
                Frame::Line("{\"op\":\"stats\"}".into()),
                Frame::Line("{\"op\":\"mups\"}".into()),
            ]
        );
        assert!(!d.is_empty());
        d.push(b"\"x\"}\n");
        assert_eq!(
            decode_all(&mut d),
            vec![Frame::Line("{\"op\":\"x\"}".into())]
        );
        assert!(d.is_empty());
    }

    #[test]
    fn decoder_handles_byte_at_a_time_delivery() {
        let mut d = FrameDecoder::default();
        let mut frames = Vec::new();
        for &b in b"a\nbb\n\ncc" {
            d.push(&[b]);
            frames.extend(decode_all(&mut d));
        }
        if let Some(f) = d.finish() {
            frames.push(f);
        }
        assert_eq!(
            frames,
            vec![
                Frame::Line("a".into()),
                Frame::Line("bb".into()),
                Frame::Line("".into()), // blank; dropped later by queue_frame
                Frame::Line("cc".into()),
            ]
        );
    }

    #[test]
    fn decoder_discards_oversized_lines_in_bounded_memory_and_resyncs() {
        let mut d = FrameDecoder::default();
        // Stream 3 MiB of garbage in chunks with no newline: the buffer
        // must stay bounded (discard mode), then the newline yields
        // TooLong and the next line decodes normally.
        let chunk = vec![b'x'; 64 * 1024];
        for _ in 0..48 {
            d.push(&chunk);
            assert!(
                d.buf.len() <= MAX_LINE_BYTES + chunk.len(),
                "unbounded buffer"
            );
        }
        assert!(d.discarding);
        d.push(b"tail\n{\"op\":\"stats\"}\n");
        assert_eq!(
            decode_all(&mut d),
            vec![Frame::TooLong, Frame::Line("{\"op\":\"stats\"}".into())]
        );
        // EOF while discarding still reports the oversized line.
        let mut d = FrameDecoder::default();
        d.push(&vec![b'y'; MAX_LINE_BYTES + 1]);
        assert_eq!(d.finish(), Some(Frame::TooLong));
        assert!(d.is_empty());
    }

    fn test_engine() -> CoverageEngine {
        let schema = Schema::new(vec![
            Attribute::with_values("sex", ["m", "f"]).unwrap(),
            Attribute::with_values("race", ["white", "black", "asian"]).unwrap(),
        ])
        .unwrap();
        let ds =
            Dataset::from_rows(schema, &[vec![0, 0], vec![0, 1], vec![1, 0], vec![0, 0]]).unwrap();
        CoverageEngine::new(ds, Threshold::Count(1)).unwrap()
    }

    #[test]
    fn event_front_end_serves_a_pipelined_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let engine = Arc::new(Mutex::new(test_engine()));
        let server = Arc::clone(&engine);
        std::thread::spawn(move || {
            let _ = serve_event(server, ServeOptions::default(), listener);
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Pipeline several requests in one write, ids out of order.
        stream
            .write_all(
                b"{\"op\":\"insert\",\"id\":1,\"row\":[\"f\",\"black\"]}\n\
                  {\"op\":\"insert\",\"id\":2,\"row\":[\"m\",\"asian\"]}\n\
                  {\"op\":\"mups\",\"id\":\"last\"}\n",
            )
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim().to_string());
        }
        assert_eq!(
            lines[0],
            "{\"ok\":true,\"id\":1,\"op\":\"insert\",\"inserted\":1,\"rows\":5}"
        );
        assert_eq!(
            lines[1],
            "{\"ok\":true,\"id\":2,\"op\":\"insert\",\"inserted\":1,\"rows\":6}"
        );
        assert!(
            lines[2].starts_with("{\"ok\":true,\"id\":\"last\","),
            "{}",
            lines[2]
        );
        // Both inserts landed (whether or not they shared a tick).
        assert_eq!(engine.lock().unwrap().dataset().len(), 6);
    }
}
